"""Unit tests for the structural Verilog writer."""

from __future__ import annotations

import re

import pytest

from repro.bist import BISTStructure, synthesize
from repro.circuit import Netlist, controller_to_verilog, netlist_to_verilog


class TestNetlistToVerilog:
    def test_small_combinational_module(self):
        net = Netlist("demo")
        net.add_primary_input("a")
        net.add_primary_input("b")
        net.add_gate("n_a", "NOT", ["a"])
        net.add_gate("z", "AND", ["n_a", "b"])
        net.mark_output("z")
        text = netlist_to_verilog(net)
        assert text.startswith("module demo (")
        assert "input a;" in text
        assert "output z;" in text
        assert "assign z = n_a & b;" in text
        assert "assign n_a = ~a;" in text
        assert text.rstrip().endswith("endmodule")

    def test_sequential_module_has_clocked_block(self):
        net = Netlist("toggler")
        net.add_flip_flop("s", "d", reset_value=1)
        net.add_gate("d", "NOT", ["s"])
        net.mark_output("s")
        text = netlist_to_verilog(net)
        assert "always @(posedge clk)" in text
        assert "s <= 1'b1;" in text  # reset value
        assert "s <= d;" in text

    def test_module_name_override_and_escaping(self):
        net = Netlist("weird name!")
        net.add_primary_input("a")
        net.add_gate("z", "BUF", ["a"])
        net.mark_output("z")
        text = netlist_to_verilog(net, module_name="my top")
        assert "module my_top (" in text

    def test_constants(self):
        net = Netlist("const")
        net.add_gate("zero", "CONST0")
        net.add_gate("one", "CONST1")
        net.mark_output("zero")
        net.mark_output("one")
        text = netlist_to_verilog(net)
        assert "assign zero = 1'b0;" in text
        assert "assign one = 1'b1;" in text


class TestControllerToVerilog:
    @pytest.mark.parametrize("structure", [BISTStructure.DFF, BISTStructure.PST, BISTStructure.PAT])
    def test_controller_modules_well_formed(self, small_controller, structure):
        controller = synthesize(small_controller, structure)
        text = controller_to_verilog(controller)
        assert text.count("module ") == 1
        assert text.count("endmodule") == 1
        # All primary inputs and outputs appear as ports.
        for i in range(small_controller.num_inputs):
            assert re.search(rf"\binput in{i};", text)
        for o in range(small_controller.num_outputs):
            assert re.search(rf"\boutput out{o};", text)
        # One register assignment per state variable.
        assert text.count("<=") >= 2 * controller.encoding.width

    def test_pst_module_contains_xor_network(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.PST)
        text = controller_to_verilog(controller)
        assert " ^ " in text
