"""Unit tests for FSM validation and structural summaries."""

from __future__ import annotations

from repro.fsm import FSM, Transition, structural_summary, validate_fsm


class TestValidate:
    def test_clean_machine(self, paper_example_fsm):
        report = validate_fsm(paper_example_fsm)
        assert report.ok
        assert not report.warnings

    def test_incomplete_machine_warns(self, incomplete_fsm):
        report = validate_fsm(incomplete_fsm)
        assert report.ok
        assert any(issue.code == "incomplete" for issue in report.warnings)

    def test_conflicting_overlap_is_error(self):
        fsm = FSM(
            "bad",
            1,
            1,
            [
                Transition("-", "a", "b", "0"),
                Transition("1", "a", "a", "1"),
                Transition("-", "b", "a", "0"),
            ],
        )
        report = validate_fsm(fsm)
        assert not report.ok
        assert any(issue.code == "overlap" for issue in report.errors)

    def test_harmless_overlap_is_warning(self):
        fsm = FSM(
            "dup",
            1,
            1,
            [
                Transition("-", "a", "b", "0"),
                Transition("1", "a", "b", "0"),
                Transition("-", "b", "a", "0"),
            ],
        )
        report = validate_fsm(fsm)
        assert report.ok
        assert any(issue.code == "overlap" for issue in report.warnings)

    def test_unreachable_state_warning(self):
        fsm = FSM(
            "unreach",
            1,
            1,
            [
                Transition("-", "a", "a", "0"),
                Transition("-", "island", "a", "0"),
            ],
            reset_state="a",
        )
        report = validate_fsm(fsm)
        assert any(issue.code == "unreachable-states" for issue in report.warnings)

    def test_unused_input_warning(self):
        fsm = FSM(
            "unused",
            2,
            1,
            [
                Transition("0-", "a", "b", "0"),
                Transition("1-", "a", "a", "1"),
                Transition("--", "b", "a", "0"),
            ],
        )
        report = validate_fsm(fsm)
        assert any(issue.code == "unused-inputs" for issue in report.warnings)

    def test_unspecified_next_warning(self, incomplete_fsm):
        completed = incomplete_fsm.completed()
        report = validate_fsm(completed)
        assert any(issue.code == "unspecified-next" for issue in report.warnings)


class TestStructuralSummary:
    def test_summary_fields(self, paper_example_fsm):
        summary = structural_summary(paper_example_fsm)
        assert summary["states"] == 3
        assert summary["inputs"] == 1
        assert summary["outputs"] == 1
        assert summary["min_code_bits"] == 2
        assert summary["deterministic"] is True
        assert summary["completely_specified"] is True
        assert summary["strongly_connected"] is True
        assert summary["reachable_states"] == 3

    def test_summary_counts_transitions(self, small_controller):
        summary = structural_summary(small_controller)
        assert summary["transitions"] == len(small_controller.transitions)
        assert summary["max_fanout"] >= 1
