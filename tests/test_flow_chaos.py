"""Tests for the deterministic chaos harness and the failure semantics it
exercises: seeded fault plans, retry/backoff + quarantine in the queue
backend, partial-result degradation, worker lease-loss abandonment, the
cell deadline guard and ``repro fsck``.

The recovery-matrix tests follow one pattern: run a sweep under an
injected fault plan and assert the merged result is *bit-identical* to
the serial baseline (recoverable faults) or degrades to a structured
partial result (poison cells) — never a hang, never a corrupted merge.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.flow import (
    ChaosStageError,
    FaultPlan,
    FaultRule,
    QueueExecutor,
    Sweep,
    SweepResult,
    fsck_queue,
    run_cell_safe,
    run_worker,
    set_active_plan,
)
from repro.flow.backends.queue import (
    RetryPolicy,
    _CellState,
    ensure_queue_dirs,
    payload_digest,
    sign_payload,
    verify_payload,
    write_json_atomic,
)
from repro.flow.chaos import CHAOS_SCHEMA, cell_label

NAMES = ["dk512", "ex4"]


def normalized(sweep_dict: dict) -> dict:
    """Strip timing/worker metadata; the rest must be bit-identical."""
    data = json.loads(json.dumps(sweep_dict))
    for key in ("total_seconds", "executor", "cache_stats"):
        data.pop(key, None)
    for result in data["results"]:
        result.pop("total_seconds", None)
        for stage in result["stages"]:
            stage.pop("seconds", None)
            stage.pop("cached", None)
    for baseline in data.get("baselines", {}).values():
        for key in ("seconds", "lookup_seconds", "cached"):
            baseline.pop(key, None)
    return data


def start_worker_thread(queue_dir: Path, worker_id: str, box: dict = None,
                        **kwargs) -> threading.Thread:
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("max_idle", 60.0)

    def run():
        stats = run_worker(queue_dir=queue_dir, worker_id=worker_id, **kwargs)
        if box is not None:
            box[worker_id] = stats

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


@pytest.fixture(scope="module")
def serial_sweep() -> SweepResult:
    return Sweep(NAMES, structures=("PST",), random_trials=2).run()


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    set_active_plan(None)


# ------------------------------------------------------------------ FaultPlan


class TestFaultPlan:
    def test_roundtrip_and_schema(self, tmp_path):
        plan = FaultPlan(seed=42, rules=(
            FaultRule(kind="worker-crash", match="flow:dk512:*", attempts=(1,)),
            FaultRule(kind="stage-delay", stage="excite", seconds=0.5,
                      probability=0.25),
        ))
        data = plan.to_dict()
        assert data["schema"] == CHAOS_SCHEMA
        assert FaultPlan.from_dict(data) == plan
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(kind="stage-error", match="flow:*", probability=0.5),
        ))
        draws = [plan.decide("stage-error", f"flow:m:PST:{i}") is not None
                 for i in range(64)]
        again = [plan.decide("stage-error", f"flow:m:PST:{i}") is not None
                 for i in range(64)]
        assert draws == again
        assert any(draws) and not all(draws)  # p=0.5 actually splits

    def test_seed_changes_draws(self):
        rule = FaultRule(kind="stage-error", probability=0.5)
        a = FaultPlan(seed=1, rules=(rule,))
        b = FaultPlan(seed=2, rules=(rule,))
        labels = [f"flow:m:PST:{i}" for i in range(64)]
        assert ([a.decide("stage-error", lbl) is not None for lbl in labels]
                != [b.decide("stage-error", lbl) is not None for lbl in labels])

    def test_match_stage_and_attempt_filters(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(kind="stage-error", match="flow:dk512:*",
                      stage="excite", attempts=(2,)),
        ))
        hit = ("stage-error", "flow:dk512:PST:0")
        assert plan.decide(*hit, attempt=2, stage="excite") is not None
        assert plan.decide(*hit, attempt=1, stage="excite") is None
        assert plan.decide(*hit, attempt=2, stage="assign") is None
        assert plan.decide(*hit, attempt=2) is None  # stage rule, no stage
        assert plan.decide("stage-error", "flow:ex4:PST:0",
                           attempt=2, stage="excite") is None

    def test_empty_attempts_means_every_attempt(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(kind="stage-error", attempts=()),
        ))
        assert all(plan.decide("stage-error", "flow:m:PST:0", attempt=n)
                   for n in (1, 2, 5, 99))

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(kind="eat-the-disk")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(kind="stage-error", probability=1.5)
        with pytest.raises(ValueError, match="seconds"):
            FaultRule(kind="stage-delay", seconds=-1.0)
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_dict({"schema": "repro.chaos/999", "seed": 0,
                                 "rules": []})

    def test_env_activation(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        FaultPlan(seed=9, rules=(FaultRule(kind="worker-crash"),)).save(path)
        from repro.flow import chaos
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, str(path))
        active = chaos.active_plan()
        assert active is not None and active.seed == 9
        override = FaultPlan(seed=11)
        set_active_plan(override)
        assert chaos.active_plan() is override
        set_active_plan(None)
        monkeypatch.delenv(chaos.CHAOS_ENV_VAR)
        assert chaos.active_plan() is None


# ------------------------------------------------------ retry + integrity


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.25,
                             backoff_factor=2.0, backoff_max=1.0)
        assert [policy.delay_for(n) for n in (1, 2, 3, 4, 5)] == [
            0.25, 0.5, 1.0, 1.0, 1.0]

    def test_roundtrip(self):
        policy = RetryPolicy(max_attempts=7, backoff_base=0.1)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


class TestPayloadIntegrity:
    def test_sign_and_verify(self):
        body = {"cell": "c1", "task": {"kind": "flow"}}
        signed = sign_payload(body)
        assert signed["sha256"] == payload_digest(body)
        assert verify_payload(signed)

    def test_tamper_detected(self):
        signed = sign_payload({"cell": "c1", "task": {"kind": "flow"}})
        signed["cell"] = "c2"
        assert not verify_payload(signed)

    def test_legacy_unsigned_payload_accepted(self):
        assert verify_payload({"cell": "c1", "task": {}})


# ------------------------------------------------------- recovery matrix


class TestChaosRecovery:
    def test_recoverable_faults_keep_bit_identical_parity(
            self, serial_sweep, tmp_path):
        """One transient stage error, one corrupted result, one corrupted
        task and one heartbeat stall — the sweep retries through all of
        them and still merges bit-identically to serial, and the queue
        directory audits clean afterwards."""
        queue_dir = tmp_path / "queue"
        set_active_plan(FaultPlan(seed=7, rules=(
            FaultRule(kind="stage-error", match="flow:dk512:PST:0",
                      stage="excite", attempts=(1,)),
            FaultRule(kind="corrupt-result", match="flow:ex4:PST:0",
                      attempts=(1,)),
            FaultRule(kind="corrupt-task", match="baseline:dk512:PST:0",
                      attempts=(1,)),
            FaultRule(kind="heartbeat-stall", match="baseline:ex4:PST:0",
                      attempts=(1,), seconds=3.0),
        )))
        threads = [start_worker_thread(queue_dir, f"w{i}", lease_timeout=1.0)
                   for i in range(2)]
        result = Sweep(
            NAMES, structures=("PST",), random_trials=2,
            backend=QueueExecutor(queue_dir, lease_timeout=1.0,
                                  poll_interval=0.02, timeout=120),
            retry_backoff=0.01,
        ).run()
        (queue_dir / "stop").touch()
        for thread in threads:
            thread.join(timeout=30)

        assert result.status == "complete"
        assert normalized(result.to_dict()) == normalized(serial_sweep.to_dict())
        executor = result.to_dict()["executor"]
        assert executor["retries"] >= 1          # transient stage error
        assert executor["corrupt_results"] >= 1  # corrupted result dropped
        assert executor["cells_lost"] >= 1       # corrupted task recovered
        assert executor["quarantined"] == []
        assert any(n > 1 for n in executor["cell_attempts"].values())
        report = fsck_queue(queue_dir, lease_timeout=60.0)
        assert report.clean, [i.to_dict() for i in report.issues]

    def test_worker_crash_mid_cell_recovers(self, serial_sweep, tmp_path):
        """A worker killed mid-cell (``os._exit``, no unwind) loses its
        lease; the cell is requeued to a surviving worker and the merged
        result is still bit-identical to serial."""
        queue_dir = tmp_path / "queue"
        plan_path = tmp_path / "plan.json"
        FaultPlan(seed=5, rules=(
            FaultRule(kind="worker-crash", match="flow:dk512:PST:0",
                      attempts=(1,)),
        )).save(plan_path)
        env = dict(os.environ, REPRO_CHAOS=str(plan_path))
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", str(queue_dir),
                 "--worker-id", f"sub{i}", "--poll-interval", "0.02",
                 "--lease-timeout", "1.0", "--max-idle", "60", "--quiet"],
                env=env,
            )
            for i in range(2)
        ]
        try:
            result = Sweep(
                NAMES, structures=("PST",), random_trials=2,
                backend=QueueExecutor(queue_dir, lease_timeout=1.0,
                                      poll_interval=0.02, timeout=120),
                retry_backoff=0.01,
            ).run()
        finally:
            ensure_queue_dirs(queue_dir)
            (queue_dir / "stop").touch()
            codes = [proc.wait(timeout=30) for proc in procs]
        assert 17 in codes, f"no worker crashed (exit codes {codes})"
        assert result.status == "complete"
        assert normalized(result.to_dict()) == normalized(serial_sweep.to_dict())
        assert result.to_dict()["executor"]["cells_requeued"] >= 1

    def test_lost_lease_is_detected_and_upload_abandoned(self, tmp_path):
        """Satellite regression: a stalled heartbeat must *surface* the
        lost lease (``heartbeats_lost``) and the duplicated execution
        must abandon its upload (``abandoned``) instead of racing the
        re-execution — the pre-chaos worker swallowed the OSError."""
        queue_dir = tmp_path / "queue"
        set_active_plan(FaultPlan(seed=1, rules=(
            FaultRule(kind="heartbeat-stall", match="flow:dk512:PST:0",
                      attempts=(1,), seconds=1.0),
            FaultRule(kind="stage-delay", match="flow:dk512:PST:0",
                      stage="minimize", attempts=(1,), seconds=3.0),
        )))
        stats_box: dict = {}
        thread = start_worker_thread(queue_dir, "w0", box=stats_box,
                                     lease_timeout=0.4)
        result = Sweep(
            ["dk512"], structures=("PST",), random_trials=2,
            backend=QueueExecutor(queue_dir, lease_timeout=0.4,
                                  poll_interval=0.02, timeout=120),
            retry_backoff=0.01,
        ).run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)

        assert result.status == "complete"
        stats = stats_box["w0"]
        assert stats.heartbeats_lost >= 1
        assert stats.abandoned >= 1
        serial = Sweep(["dk512"], structures=("PST",), random_trials=2).run()
        assert normalized(result.to_dict()) == normalized(serial.to_dict())


# ------------------------------------------------- poison cells + degradation


class TestPoisonQuarantine:
    POISON = (FaultRule(kind="stage-error", match="flow:dk512:PST:0",
                        stage="minimize", attempts=()),)

    def test_non_strict_degrades_to_partial_with_quarantine(self, tmp_path):
        queue_dir = tmp_path / "queue"
        set_active_plan(FaultPlan(seed=1, rules=self.POISON))
        thread = start_worker_thread(queue_dir, "w0")
        result = Sweep(
            NAMES, structures=("PST",), random_trials=2, strict=False,
            backend=QueueExecutor(queue_dir, lease_timeout=10.0,
                                  poll_interval=0.02, timeout=120),
            max_attempts=3, retry_backoff=0.01,
        ).run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)

        assert result.status == "partial"
        assert len(result.failed_cells) == 1
        failed = result.failed_cells[0]
        assert (failed["fsm"], failed["structure"]) == ("dk512", "PST")
        # Two identical error records classify the fault as deterministic
        # — quarantined early, before max_attempts is burned.
        assert failed["attempts"] == 2
        assert [e["type"] for e in failed["errors"]] == ["ChaosStageError"] * 2
        quarantine = Path(failed["quarantined"])
        assert quarantine.parent == queue_dir / "failed"
        payload = json.loads(quarantine.read_text())
        assert payload["reason"] == "deterministic"
        assert len(payload["errors"]) == 2
        # Every healthy cell still delivered: partial, not empty.
        assert {r.fsm for r in result.results} == {"ex4"}
        assert set(result.baselines) == {"dk512", "ex4"}
        # Round-trip keeps the degradation metadata.
        again = SweepResult.from_dict(result.to_dict())
        assert again.status == "partial"
        assert len(again.failed_cells) == 1
        report = fsck_queue(queue_dir, lease_timeout=60.0)
        assert report.clean
        assert any("quarantined" in note for note in report.notes)

    def test_strict_mode_raises_with_attempt_count(self, tmp_path):
        queue_dir = tmp_path / "queue"
        set_active_plan(FaultPlan(seed=1, rules=self.POISON))
        thread = start_worker_thread(queue_dir, "w0")
        try:
            with pytest.raises(RuntimeError, match=r"after 2 attempt\(s\)"):
                Sweep(
                    ["dk512"], structures=("PST",), random_trials=2,
                    backend=QueueExecutor(queue_dir, lease_timeout=10.0,
                                          poll_interval=0.02, timeout=120),
                    retry_backoff=0.01,
                ).run()
        finally:
            (queue_dir / "stop").touch()
            thread.join(timeout=30)

    def test_transient_error_exhausts_max_attempts_before_quarantine(
            self, tmp_path):
        """Errors that differ between attempts read as transient — the
        executor burns every configured attempt before giving up."""
        queue_dir = tmp_path / "queue"
        set_active_plan(FaultPlan(seed=1, rules=(
            FaultRule(kind="stage-error", match="flow:dk512:PST:0",
                      stage="assign", attempts=(1, 3)),
            FaultRule(kind="stage-error", match="flow:dk512:PST:0",
                      stage="excite", attempts=(2,)),
        )))
        thread = start_worker_thread(queue_dir, "w0")
        result = Sweep(
            ["dk512"], structures=("PST",), random_trials=2, strict=False,
            backend=QueueExecutor(queue_dir, lease_timeout=10.0,
                                  poll_interval=0.02, timeout=120),
            max_attempts=3, retry_backoff=0.01,
        ).run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)
        assert result.status == "partial"
        failed = result.failed_cells[0]
        assert failed["attempts"] == 3
        stages = [e["message"] for e in failed["errors"]]
        assert "assign" in stages[0] and "excite" in stages[1]

    def test_serial_backend_degrades_without_retries(self):
        """Serial/pool backends have no retry loop but share the same
        structured degradation: non-strict yields a partial result after
        a single attempt."""
        set_active_plan(FaultPlan(seed=1, rules=self.POISON))
        result = Sweep(["dk512"], structures=("PST",), random_trials=2,
                       strict=False).run()
        assert result.status == "partial"
        assert result.failed_cells[0]["attempts"] == 1
        assert result.failed_cells[0]["errors"][0]["type"] == "ChaosStageError"

    def test_cell_deadline_is_a_deterministic_error(self):
        # The deadline is checked on *entry* to each stage, so the injected
        # slowdown sits before ``excite`` and the breach is observed at the
        # next boundary (``minimize``).
        set_active_plan(FaultPlan(seed=1, rules=(
            FaultRule(kind="stage-delay", match="flow:dk512:PST:0",
                      stage="excite", attempts=(), seconds=0.3),
        )))
        task = [t for t in Sweep(["dk512"], structures=("PST",),
                                 random_trials=2,
                                 cell_deadline=0.05).cells()
                if t["kind"] == "flow"][0]
        outcome = run_cell_safe(dict(task))
        assert outcome["error"]["type"] == "CellDeadlineExceeded"
        assert "deadline" in outcome["error"]["message"]

    def test_chaos_stage_error_is_raised_in_process(self):
        set_active_plan(FaultPlan(seed=1, rules=self.POISON))
        task = [t for t in Sweep(["dk512"], structures=("PST",),
                                 random_trials=2).cells()
                if t["kind"] == "flow"][0]
        from repro.flow.cells import run_cell
        with pytest.raises(ChaosStageError, match="minimize"):
            run_cell(dict(task))


# ----------------------------------------------------------- runaway hard cap


class TestRunawayHardCap:
    """The attempt hard cap quarantines runaway cells on *every*
    resubmission path — retry backoffs, corrupt-result backoffs, stale
    leases and lost cells alike — and records a structured outcome so a
    partial result comes back instead of a crash."""

    def _executor(self, queue_dir, fake):
        return QueueExecutor(
            queue_dir, lease_timeout=30.0,
            retry=RetryPolicy(max_attempts=1, backoff_base=0.0),
            clock=lambda: fake["now"],
        )

    def test_backoff_cell_past_cap_quarantines_into_outcomes(self, tmp_path):
        """Regression: the runaway quarantine must write the real outcomes
        dict — a throwaway dict left ``outcomes[cid]`` missing and the
        merge crashed with KeyError instead of degrading."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        fake = {"now": 1_000_000.0}
        executor = self._executor(queue_dir, fake)
        cid = "run0-cell"
        state = _CellState(task={"kind": "flow", "cell": cid})
        state.attempt = executor._hard_cap  # the next resubmit breaches it
        state.resubmit_at = fake["now"]
        outcomes: dict = {}
        executor._serve_backoffs(paths, [cid], {cid: state}, outcomes)
        assert state.failed
        assert outcomes[cid]["quarantine_reason"] == "runaway"
        assert outcomes[cid]["error"]["type"] == "QueueRunawayError"
        assert outcomes[cid]["attempts"] == executor._hard_cap + 1
        quarantine = paths.failed / f"{cid}.json"
        assert quarantine.exists()
        assert json.loads(quarantine.read_text())["reason"] == "runaway"

    def test_lost_cell_requeue_respects_hard_cap(self, tmp_path):
        """Regression: infra requeues (lost cells, stale leases) never set
        ``resubmit_at``, so a cap checked only in the backoff server let a
        corrupt-every-attempt fault cycle submit→drop→resubmit forever."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        fake = {"now": 1_000_000.0}
        executor = self._executor(queue_dir, fake)
        cid = "run0-cell"
        state = _CellState(task={"kind": "flow", "cell": cid})
        state.attempt = executor._hard_cap
        outcomes: dict = {}
        counters = {"cells_lost": 0}
        # No task/claim/result file: the cell is lost and would resubmit.
        executor._recover_lost_cells(paths, [cid], {cid: state}, outcomes,
                                     counters)
        assert counters["cells_lost"] == 1
        assert state.failed
        assert outcomes[cid]["quarantine_reason"] == "runaway"
        assert not (paths.tasks / f"{cid}.json").exists()

    def test_corrupt_result_retries_with_backoff(self, tmp_path):
        """Regression: a corrupt result used to resubmit immediately —
        persistent corruption hot-looped at the poll interval and never
        reached the hard-cap check."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        fake = {"now": 1_000_000.0}
        executor = QueueExecutor(
            queue_dir, lease_timeout=30.0,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.5),
            clock=lambda: fake["now"],
        )
        cid = "run0-cell"
        state = _CellState(task={"kind": "flow", "cell": cid})
        (paths.results / f"{cid}.json").write_text("{not json")
        counters = {"corrupt_results": 0}
        executor._drop_corrupt_result(paths, cid, state, counters)
        assert counters["corrupt_results"] == 1
        # In backoff, not resubmitted yet; served once the delay elapses.
        assert state.resubmit_at == fake["now"] + 0.5
        assert not (paths.tasks / f"{cid}.json").exists()
        fake["now"] += 0.5
        executor._serve_backoffs(paths, [cid], {cid: state}, {})
        assert state.attempt == 2
        assert (paths.tasks / f"{cid}.json").exists()

    def test_corrupt_every_attempt_degrades_to_partial(self, serial_sweep,
                                                       tmp_path):
        """End to end: a result corrupted on *every* attempt — the exact
        adversary the cap guards against — terminates in a runaway
        quarantine and a partial result; healthy cells still deliver."""
        queue_dir = tmp_path / "queue"
        set_active_plan(FaultPlan(seed=3, rules=(
            FaultRule(kind="corrupt-result", match="flow:dk512:PST:0",
                      attempts=()),
        )))
        executor = QueueExecutor(
            queue_dir, lease_timeout=10.0, poll_interval=0.02, timeout=120,
            retry=RetryPolicy(max_attempts=1, backoff_base=0.01),
        )
        thread = start_worker_thread(queue_dir, "w0")
        result = Sweep(
            NAMES, structures=("PST",), random_trials=2, strict=False,
            backend=executor,
        ).run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)

        assert result.status == "partial"
        assert len(result.failed_cells) == 1
        failed = result.failed_cells[0]
        assert (failed["fsm"], failed["structure"]) == ("dk512", "PST")
        assert failed["errors"][0]["type"] == "QueueRunawayError"
        assert failed["attempts"] == executor._hard_cap + 1
        quarantine = Path(failed["quarantined"])
        assert json.loads(quarantine.read_text())["reason"] == "runaway"
        metadata = result.to_dict()["executor"]
        assert metadata["corrupt_results"] >= executor._hard_cap
        # Every healthy cell still merged bit-identically to serial.
        assert {r.fsm for r in result.results} == {"ex4"}
        report = fsck_queue(queue_dir, lease_timeout=60.0)
        assert report.clean, [i.to_dict() for i in report.issues]


# --------------------------------------------------------- timeout diagnostics


class TestTimeoutDiagnostics:
    def test_timeout_names_pending_cells_and_attempts(self, tmp_path):
        queue_dir = tmp_path / "queue"
        executor = QueueExecutor(queue_dir, lease_timeout=5.0,
                                 poll_interval=0.02, timeout=0.3)
        sweep = Sweep(["dk512"], structures=("PST",), random_trials=2,
                      backend=executor)
        with pytest.raises(TimeoutError) as excinfo:
            sweep.run()
        message = str(excinfo.value)
        assert "repro worker" in message
        assert "pending, unclaimed" in message
        assert "attempt 1" in message
        # Queue should be left clean: leftover tasks withdrawn on abort.
        assert not list((queue_dir / "tasks").glob("*.json"))


# ----------------------------------------------------------------------- fsck


class TestFsck:
    def _mangled_queue(self, tmp_path) -> Path:
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        # tmp leftover from an interrupted atomic write
        (paths.tasks / "junk.tmp").write_text("{")
        # corrupt (torn) task payload
        (paths.tasks / "torn.json").write_text('{"cell": "torn"')
        # integrity-violating claim (signed then tampered)
        bad = sign_payload({"cell": "tampered", "task": {}})
        bad["cell"] = "evil"
        write_json_atomic(paths.claims / "tampered.json", bad)
        # duplicate claim: claim + pending task for the same cell
        write_json_atomic(paths.tasks / "dup.json",
                          sign_payload({"cell": "dup", "task": {}}))
        write_json_atomic(paths.claims / "dup.json",
                          sign_payload({"cell": "dup", "task": {}}))
        # finished claim: claim + result for the same cell
        write_json_atomic(paths.results / "done.json",
                          sign_payload({"cell": "done", "outcome": {}}))
        write_json_atomic(paths.claims / "done.json",
                          sign_payload({"cell": "done", "task": {}}))
        # stale claim: heartbeat long dead, no result
        write_json_atomic(paths.claims / "stale.json",
                          sign_payload({"cell": "stale", "task": {}}))
        past = time.time() - 3600
        os.utime(paths.claims / "stale.json", (past, past))
        # stale worker registration
        write_json_atomic(paths.workers / "dead.json", {"worker": "dead"})
        os.utime(paths.workers / "dead.json", (past, past))
        return queue_dir

    def test_audit_finds_every_violation(self, tmp_path):
        queue_dir = self._mangled_queue(tmp_path)
        report = fsck_queue(queue_dir, lease_timeout=30.0)
        kinds = sorted(issue.kind for issue in report.issues)
        assert kinds == ["corrupt-claim", "corrupt-task", "duplicate-claim",
                         "finished-claim", "stale-claim", "stale-worker",
                         "tmp-file"]
        assert not report.clean
        assert report.repaired is False
        data = report.to_dict()
        assert data["schema"] == "repro.fsck/1"
        assert data["clean"] is False

    def test_repair_then_clean(self, tmp_path):
        queue_dir = self._mangled_queue(tmp_path)
        report = fsck_queue(queue_dir, repair=True, lease_timeout=30.0)
        assert all(issue.repair for issue in report.issues)
        requeued = [i for i in report.issues if i.kind == "stale-claim"]
        assert requeued and requeued[0].repair == "requeued to tasks/"
        assert (queue_dir / "tasks" / "stale.json").exists()
        # Second pass: the only survivor is the requeued stale task, which
        # is a *pending* task now — a valid state.
        again = fsck_queue(queue_dir, repair=False, lease_timeout=30.0)
        assert again.clean, [i.to_dict() for i in again.issues]

    def test_missing_root(self, tmp_path):
        report = fsck_queue(tmp_path / "nope")
        assert [i.kind for i in report.issues] == ["missing-root"]

    def test_cli_fsck(self, tmp_path, capsys):
        queue_dir = self._mangled_queue(tmp_path)
        assert main(["fsck", str(queue_dir), "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.fsck/1" and not data["clean"]
        assert main(["fsck", str(queue_dir), "--repair"]) == 1
        capsys.readouterr()
        assert main(["fsck", str(queue_dir)]) == 0
        assert "clean" in capsys.readouterr().out


# ----------------------------------------------------------- CLI integration


class TestChaosCli:
    def test_allow_partial_flag_prints_degradation_warning(self, capsys):
        set_active_plan(FaultPlan(seed=1, rules=(
            FaultRule(kind="stage-error", match="flow:dk512:PST:0",
                      stage="minimize", attempts=()),
        )))
        exit_code = main(["sweep", "--machines", "dk512", "--structures",
                          "PST", "--allow-partial", "--json"])
        assert exit_code == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data["status"] == "partial"
        assert len(data["failed_cells"]) == 1
        assert "partial" in captured.err
