"""Unit tests for multi-level literal estimation (common-cube extraction)."""

from __future__ import annotations

import pytest

from repro.logic import (
    Cover,
    Cube,
    build_network,
    extract_common_cubes,
    multilevel_literal_count,
)


def _cover(num_inputs, num_outputs, rows):
    cover = Cover(num_inputs, num_outputs)
    for inputs, outputs in rows:
        cover.add(Cube.from_strings(inputs, outputs))
    return cover


class TestBuildNetwork:
    def test_one_node_per_output(self):
        cover = _cover(3, 2, [("11-", "10"), ("0-1", "01")])
        network = build_network(cover)
        assert network.node_names() == ["f0", "f1"]
        assert network.literal_count() == 4

    def test_custom_names(self):
        cover = _cover(2, 1, [("10", "1")])
        network = build_network(cover, input_names=["a", "b"], output_names=["z"])
        assert network.node_names() == ["z"]
        term = network.nodes[0].terms[0]
        assert ("a", 1) in term and ("b", 0) in term

    def test_name_length_mismatch(self):
        cover = _cover(2, 1, [("10", "1")])
        with pytest.raises(ValueError):
            build_network(cover, input_names=["a"], output_names=["z"])

    def test_shared_cube_counted_per_output(self):
        cover = _cover(2, 2, [("11", "11")])
        network = build_network(cover)
        assert network.literal_count() == 4


class TestExtraction:
    def test_extracts_common_pair(self):
        # Three terms share the pair a.b -> extraction saves literals.
        cover = _cover(4, 1, [("11-0", "1"), ("110-", "1"), ("11-1", "1")])
        network = build_network(cover)
        before = network.literal_count()
        optimised = extract_common_cubes(network)
        assert optimised.literal_count() < before
        assert any(name.startswith("_d") for name in optimised.node_names())

    def test_no_extraction_when_nothing_shared(self):
        cover = _cover(4, 1, [("10--", "1"), ("--01", "1")])
        network = build_network(cover)
        optimised = extract_common_cubes(network)
        assert optimised.literal_count() == network.literal_count()

    def test_extraction_across_outputs(self):
        cover = _cover(4, 2, [("11-0", "10"), ("11--", "01"), ("111-", "10")])
        network = build_network(cover)
        optimised = extract_common_cubes(network)
        assert optimised.literal_count() <= network.literal_count()

    def test_original_network_not_modified(self):
        cover = _cover(4, 1, [("11-0", "1"), ("110-", "1"), ("11-1", "1")])
        network = build_network(cover)
        before = network.literal_count()
        extract_common_cubes(network)
        assert network.literal_count() == before

    def test_max_divisor_cap(self):
        cover = _cover(4, 1, [("11-0", "1"), ("110-", "1"), ("11-1", "1")])
        network = build_network(cover)
        optimised = extract_common_cubes(network, max_divisors=0)
        assert optimised.literal_count() == network.literal_count()


class TestLiteralCount:
    def test_end_to_end_count(self):
        cover = _cover(4, 2, [("11-0", "10"), ("110-", "11"), ("11-1", "01")])
        count = multilevel_literal_count(cover)
        assert count > 0
        network = build_network(cover)
        assert count <= network.literal_count()
