"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.fsm import FSM, Transition, generate_controller, generate_counter


@pytest.fixture
def paper_example_fsm() -> FSM:
    """The three-state example of Fig. 3 of the paper (states pre-encoded).

    The machine has one input and one output; the state names record the
    codes used in the figure so the PAT experiments can check which
    transitions coincide with the LFSR cycle of ``1 + x + x^2``.
    """
    transitions = [
        Transition("0", "A", "A", "0"),
        Transition("1", "A", "B", "0"),
        Transition("0", "B", "C", "1"),
        Transition("1", "B", "A", "0"),
        Transition("0", "C", "A", "1"),
        Transition("1", "C", "B", "1"),
    ]
    return FSM("fig3", 1, 1, transitions, reset_state="A")


@pytest.fixture
def small_controller() -> FSM:
    """A deterministic, completely specified 8-state controller."""
    return generate_controller(
        "small", num_states=8, num_inputs=3, num_outputs=2, num_transitions=24, seed=11
    )


@pytest.fixture
def tiny_counter() -> FSM:
    """A modulo-6 counter with an enable input."""
    return generate_counter("cnt6", num_states=6, num_outputs=2, seed=3)


@pytest.fixture
def incomplete_fsm() -> FSM:
    """A small machine with unspecified (state, input) combinations."""
    transitions = [
        Transition("00", "idle", "run", "10"),
        Transition("01", "idle", "idle", "0-"),
        Transition("1-", "run", "done", "01"),
        Transition("00", "run", "run", "11"),
        Transition("--", "done", "idle", "00"),
    ]
    return FSM("incomplete", 2, 2, transitions, reset_state="idle")
