"""Unit tests for the synthesis flow and the structure comparison."""

from __future__ import annotations

import pytest

from repro.bist import (
    BISTStructure,
    SynthesisOptions,
    compare_structures,
    synthesize,
    synthesize_all_structures,
)
from repro.encoding import natural_encoding


class TestSynthesize:
    @pytest.mark.parametrize("structure", list(BISTStructure))
    def test_all_structures_synthesise(self, small_controller, structure):
        controller = synthesize(small_controller, structure)
        assert controller.structure is structure
        assert controller.product_terms > 0
        assert controller.sop_literals > 0
        assert controller.encoding.width == small_controller.min_code_bits
        if structure is BISTStructure.DFF:
            assert controller.register is None
        else:
            assert controller.register is not None
            assert controller.register.is_maximal_length

    def test_minimisation_reduces_terms(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.DFF)
        assert controller.product_terms <= controller.minimization.initial_terms

    def test_caller_provided_encoding_used(self, small_controller):
        encoding = natural_encoding(small_controller)
        controller = synthesize(small_controller, BISTStructure.DFF, encoding=encoding)
        assert controller.encoding.codes == encoding.codes
        assert controller.assignment_report["assignment"] == "caller-provided"

    def test_assignment_reports(self, small_controller):
        dff = synthesize(small_controller, BISTStructure.DFF)
        assert dff.assignment_report["assignment"] == "mustang"
        pat = synthesize(small_controller, BISTStructure.PAT)
        assert pat.assignment_report["assignment"] == "pat"
        assert pat.assignment_report["covered_transitions"] >= 0
        pst = synthesize(small_controller, BISTStructure.PST)
        assert pst.assignment_report["assignment"] == "misr"
        assert "column_costs" in pst.assignment_report

    def test_pat_exploits_autonomous_transitions(self, tiny_counter):
        controller = synthesize(tiny_counter, BISTStructure.PAT)
        assert controller.excitation.autonomous_transitions > 0

    def test_summary_keys(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.PST)
        summary = controller.summary()
        assert summary["fsm"] == small_controller.name
        assert summary["structure"] == "PST"
        assert summary["product_terms"] == controller.product_terms

    def test_multilevel_literals_at_most_sop_product(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.DFF)
        assert controller.multilevel_literals() > 0

    def test_quick_method_option(self, small_controller):
        options = SynthesisOptions(minimize_method="quick")
        controller = synthesize(small_controller, BISTStructure.DFF, options=options)
        assert controller.minimization.method == "quick"

    def test_wider_encoding_option(self, small_controller):
        options = SynthesisOptions(width=4)
        controller = synthesize(small_controller, BISTStructure.PST, options=options)
        assert controller.encoding.width == 4

    def test_profile_access(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.PST)
        assert controller.profile.register_bits == controller.encoding.width


class TestSynthesizeAllStructures:
    def test_default_structures(self, small_controller):
        results = synthesize_all_structures(small_controller)
        assert set(results) == {BISTStructure.PST, BISTStructure.DFF, BISTStructure.PAT}
        for structure, controller in results.items():
            assert controller.structure is structure

    def test_pat_never_worse_than_dff_by_much(self, small_controller):
        results = synthesize_all_structures(small_controller)
        # PAT gets the DFF logic plus don't cares, so it should not be larger
        # by more than a small margin (different assignments add noise).
        assert results[BISTStructure.PAT].product_terms <= results[BISTStructure.DFF].product_terms + 3


class TestCompareStructures:
    def test_comparison_contains_all_metrics(self, small_controller):
        comparison = compare_structures(
            small_controller, structures=(BISTStructure.DFF, BISTStructure.PST)
        )
        assert comparison.fsm_name == small_controller.name
        assert len(comparison.metrics) == 2
        dff = comparison.metric_for(BISTStructure.DFF)
        pst = comparison.metric_for(BISTStructure.PST)
        assert dff.register_bits > pst.register_bits
        assert pst.control_signals <= dff.control_signals
        assert pst.at_speed_dynamic_fault_test and not dff.at_speed_dynamic_fault_test

    def test_unknown_structure_lookup(self, small_controller):
        comparison = compare_structures(small_controller, structures=(BISTStructure.DFF,))
        with pytest.raises(KeyError):
            comparison.metric_for(BISTStructure.PST)

    def test_rows_and_ratings(self, small_controller):
        comparison = compare_structures(
            small_controller, structures=(BISTStructure.DFF, BISTStructure.PST)
        )
        rows = comparison.as_rows()
        assert len(rows) == 2
        assert {row["structure"] for row in rows} == {"DFF", "PST"}
        ratings = comparison.qualitative_ratings()
        assert "storage elements" in ratings
