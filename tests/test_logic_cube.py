"""Unit tests for the positional-cube representation."""

from __future__ import annotations

import pytest

from repro.logic import Cube, CubeError


class TestConstruction:
    def test_from_strings(self):
        cube = Cube.from_strings("1-0", "101")
        assert cube.num_inputs == 3
        assert cube.input_string() == "1-0"
        assert cube.output_string(3) == "101"

    def test_invalid_input_literal(self):
        with pytest.raises(CubeError):
            Cube.from_strings("1x0", "1")

    def test_invalid_output_literal(self):
        with pytest.raises(CubeError):
            Cube.from_strings("10", "2")

    def test_universal(self):
        cube = Cube.universal(4, 0b11)
        assert cube.input_string() == "----"
        assert cube.outputs == 0b11

    def test_output_dash_means_not_driven(self):
        cube = Cube.from_strings("01", "-1")
        assert cube.outputs == 0b10


class TestInspection:
    def test_literal_count(self):
        assert Cube.from_strings("1-0-", "1").literal_count() == 2
        assert Cube.from_strings("----", "1").literal_count() == 0

    def test_output_count(self):
        assert Cube.from_strings("1", "1011").output_count() == 3

    def test_specified_vars(self):
        assert Cube.from_strings("-01-", "1").specified_vars() == [1, 2]

    def test_minterm_count(self):
        assert Cube.from_strings("1--", "1").minterm_count() == 4
        assert Cube.from_strings("101", "1").minterm_count() == 1

    def test_enumerate_minterms(self):
        points = set(Cube.from_strings("1-", "1").enumerate_minterms())
        assert points == {(1, 0), (1, 1)}

    def test_is_input_valid(self):
        cube = Cube.from_strings("10", "1")
        assert cube.is_input_valid()
        empty = cube.with_input(0, 0b00)
        assert not empty.is_input_valid()


class TestOperations:
    def test_raise_input(self):
        cube = Cube.from_strings("10", "1")
        assert cube.raise_input(0).input_string() == "-0"

    def test_with_outputs(self):
        cube = Cube.from_strings("10", "01")
        assert cube.with_outputs(0b01).output_string(2) == "10"

    def test_inputs_intersect(self):
        a = Cube.from_strings("1-0", "1")
        b = Cube.from_strings("-10", "1")
        c = Cube.from_strings("0--", "1")
        assert a.inputs_intersect(b)
        assert not a.inputs_intersect(c)

    def test_input_contains(self):
        big = Cube.from_strings("1--", "1")
        small = Cube.from_strings("101", "1")
        assert big.input_contains(small)
        assert not small.input_contains(big)

    def test_contains_requires_outputs_too(self):
        big = Cube.from_strings("1--", "10")
        small = Cube.from_strings("101", "11")
        assert not big.contains(small)
        assert big.with_outputs(0b11).contains(small)

    def test_input_cofactor_disjoint_is_none(self):
        a = Cube.from_strings("1-", "1")
        b = Cube.from_strings("0-", "1")
        assert a.input_cofactor(b) is None

    def test_input_cofactor_raises_constrained_vars(self):
        a = Cube.from_strings("11", "1")
        against = Cube.from_strings("1-", "1")
        cofactored = a.input_cofactor(against)
        assert cofactored is not None
        assert cofactored.input_string() == "-1"

    def test_input_distance(self):
        a = Cube.from_strings("110", "1")
        b = Cube.from_strings("101", "1")
        assert a.input_distance(b) == 2

    def test_merge_distance_one(self):
        a = Cube.from_strings("110", "1")
        b = Cube.from_strings("100", "1")
        merged = a.merge_distance_one(b)
        assert merged is not None
        assert merged.input_string() == "1-0"

    def test_merge_rejects_output_mismatch(self):
        a = Cube.from_strings("110", "1")
        b = Cube.from_strings("100", "0")
        assert a.merge_distance_one(b) is None

    def test_merge_rejects_distance_two(self):
        a = Cube.from_strings("110", "1")
        b = Cube.from_strings("001", "1")
        assert a.merge_distance_one(b) is None
