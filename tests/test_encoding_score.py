"""Parity suite for the incremental bitmask scoring engine (encoding/score.py).

The incremental engine must be *bit-identical* to the reference full-rescore
implementation: same encodings, same costs, same column costs, same chosen
polynomial, same refinement decisions.  These tests pin that contract three
ways — cross-engine parity on every seed MCNC benchmark, golden values
captured from the pre-refactor implementation, and property-style checks that
the incremental estimators equal a brute-force recompute after arbitrary
move sequences.
"""

from __future__ import annotations

import random

import pytest

from repro.encoding import (
    BeamScorer,
    FSMBitmaps,
    ScoredEncoding,
    assign_misr_states,
    partial_assignment_cost,
    random_encoding,
)
from repro.encoding.assignment import StateEncoding
from repro.encoding.cost import estimate_product_terms
from repro.encoding.misr_assign import _swap_candidates
from repro.fsm import generate_controller
from repro.fsm.mcnc import benchmark_names, load_benchmark
from repro.lfsr import LFSR
from repro.logic.symbolic import symbolic_minimize

# Search effort of the cross-engine parity sweep: reduced from the defaults so
# the reference engine stays cheap on the big machines (the parity property is
# configuration-independent).
PARITY_EFFORT = dict(beam_width=2, partitions_per_column=4, refinement_moves_per_pass=80)

# Golden results of the pre-refactor implementation (default parameters,
# seed=0) for the small seed benchmarks: the incremental engine must keep
# reproducing the historical numbers exactly.
PRE_REFACTOR_GOLDEN = {
    "dk512": {
        "codes": {
            "s0": "0111", "s1": "0011", "s2": "0001", "s3": "1000", "s4": "0110",
            "s5": "0100", "s6": "1011", "s7": "0101", "s8": "1010", "s9": "1101",
            "s10": "0000", "s11": "0010", "s12": "1110", "s13": "1111", "s14": "1001",
        },
        "poly": 19, "cost": 0, "column_costs": (0, 0, 0, 0), "feedback_cost": 0,
        "explored": 104, "est": 11, "moves": 9,
    },
    "ex4": {
        "codes": {
            "s0": "1111", "s1": "0001", "s2": "1000", "s3": "1100", "s4": "0011",
            "s5": "0110", "s6": "0010", "s7": "0100", "s8": "0111", "s9": "1110",
            "s10": "0101", "s11": "1010", "s12": "1011", "s13": "0000",
        },
        "poly": 19, "cost": 0, "column_costs": (0, 0, 0, 0), "feedback_cost": 0,
        "explored": 103, "est": 16, "moves": 3,
    },
    "mark1": {
        "codes": {
            "s0": "0000", "s1": "0001", "s2": "0010", "s3": "1000", "s4": "1101",
            "s5": "1110", "s6": "0101", "s7": "0110", "s8": "1111", "s9": "1011",
            "s10": "1001", "s11": "1010", "s12": "0111", "s13": "0011", "s14": "0100",
        },
        "poly": 19, "cost": 0, "column_costs": (0, 0, 0, 0), "feedback_cost": 0,
        "explored": 104, "est": 15, "moves": 4,
    },
    "modulo12": {
        "codes": {
            "s0": "1110", "s1": "0010", "s2": "1100", "s3": "0001", "s4": "1000",
            "s5": "1011", "s6": "0101", "s7": "1010", "s8": "1001", "s9": "0011",
            "s10": "0100", "s11": "0000",
        },
        "poly": 19, "cost": 2, "column_costs": (4, 4, 0, 0), "feedback_cost": 2,
        "explored": 97, "est": 12, "moves": 4,
    },
}


def _result_tuple(result):
    return (
        dict(result.encoding.codes),
        result.lfsr.polynomial,
        result.cost,
        result.column_costs,
        result.feedback_cost,
        result.partial_assignments_explored,
        result.estimated_product_terms,
        result.refinement_moves,
    )


class TestEngineParity:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_incremental_matches_reference_on_seed_benchmarks(self, name):
        fsm = load_benchmark(name)
        for seed in (0, 3):
            incremental = assign_misr_states(
                fsm, seed=seed, engine="incremental", **PARITY_EFFORT
            )
            reference = assign_misr_states(
                fsm, seed=seed, engine="reference", **PARITY_EFFORT
            )
            assert _result_tuple(incremental) == _result_tuple(reference), (name, seed)

    @pytest.mark.parametrize("register", ["misr", "dff"])
    def test_parity_for_both_register_types_and_weights(self, small_controller, register):
        kwargs = dict(seed=4, register=register, input_weight=3, output_weight=2)
        incremental = assign_misr_states(small_controller, engine="incremental", **kwargs)
        reference = assign_misr_states(small_controller, engine="reference", **kwargs)
        assert _result_tuple(incremental) == _result_tuple(reference)

    @pytest.mark.parametrize("name", sorted(PRE_REFACTOR_GOLDEN))
    def test_matches_pre_refactor_golden(self, name):
        golden = PRE_REFACTOR_GOLDEN[name]
        result = assign_misr_states(load_benchmark(name), seed=0)
        assert dict(result.encoding.codes) == golden["codes"]
        assert result.lfsr.polynomial == golden["poly"]
        assert result.cost == golden["cost"]
        assert result.column_costs == golden["column_costs"]
        assert result.feedback_cost == golden["feedback_cost"]
        assert result.partial_assignments_explored == golden["explored"]
        assert result.estimated_product_terms == golden["est"]
        assert result.refinement_moves == golden["moves"]

    def test_precomputed_implicants_change_nothing(self, small_controller):
        implicants = symbolic_minimize(small_controller)
        with_precomputed = assign_misr_states(small_controller, seed=2, implicants=implicants)
        without = assign_misr_states(small_controller, seed=2)
        assert _result_tuple(with_precomputed) == _result_tuple(without)


class TestMultiStart:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_result_is_independent_of_jobs(self, small_controller, jobs):
        base = assign_misr_states(small_controller, seed=0, multi_start=3, jobs=1)
        fanned = assign_misr_states(small_controller, seed=0, multi_start=3, jobs=jobs)
        assert _result_tuple(fanned) == _result_tuple(base)

    def test_multi_start_never_worse_than_single(self):
        fsm = load_benchmark("modulo12")
        single = assign_misr_states(fsm, seed=0)
        multi = assign_misr_states(fsm, seed=0, multi_start=3)
        assert multi.estimated_product_terms <= single.estimated_product_terms

    def test_invalid_parameters(self, small_controller):
        with pytest.raises(ValueError):
            assign_misr_states(small_controller, multi_start=0)
        with pytest.raises(ValueError):
            assign_misr_states(small_controller, jobs=0)
        with pytest.raises(ValueError):
            assign_misr_states(small_controller, engine="turbo")
        with pytest.raises(ValueError):
            assign_misr_states(small_controller, register="jk")


class TestBeamScorerParity:
    @pytest.mark.parametrize("register,weights", [
        ("misr", (2, 1)),
        ("misr", (1, 3)),
        ("dff", (2, 1)),
    ])
    def test_append_column_matches_partial_assignment_cost(self, register, weights):
        input_weight, output_weight = weights
        rng = random.Random(17)
        for trial in range(6):
            fsm = generate_controller(
                f"beam{trial}", num_states=7, num_inputs=2, num_outputs=2,
                num_transitions=21, seed=trial,
            )
            implicants = symbolic_minimize(fsm)
            states = list(fsm.states)
            width = fsm.min_code_bits
            scorer = BeamScorer(
                FSMBitmaps(states, implicants), register, input_weight, output_weight
            )
            # Random (possibly non-injective) column partitions: the cost
            # model never requires injectivity, so any 0/1 labelling must
            # agree with the brute-force rescore.
            score = scorer.initial()
            prefixes = {s: "" for s in states}
            for column in range(width):
                partition = {s: rng.choice("01") for s in states}
                prefixes = {s: prefixes[s] + partition[s] for s in states}
                score, cost = scorer.append_column(score, partition)
                expected = partial_assignment_cost(
                    implicants, prefixes, column, register, input_weight, output_weight
                )
                assert cost == expected, (trial, column, register, weights)


class TestScoredEncodingParity:
    @pytest.mark.parametrize("structure", ["pst", "dff"])
    def test_incremental_estimate_tracks_full_recompute_over_moves(self, structure):
        rng = random.Random(23)
        for trial in range(4):
            fsm = generate_controller(
                f"inc{trial}", num_states=9, num_inputs=2, num_outputs=3,
                num_transitions=30, seed=50 + trial,
            )
            width = fsm.min_code_bits + (trial % 2)  # also cover spare codes
            encoding = random_encoding(fsm, width=width, seed=trial)
            lfsr = LFSR.with_primitive_polynomial(width)
            scored = ScoredEncoding(fsm, encoding, lfsr, structure)
            assert scored.estimate == estimate_product_terms(fsm, encoding, lfsr, structure)

            codes = dict(encoding.codes)
            states = list(codes)
            for _ in range(40):
                if rng.random() < 0.5:
                    a, b = rng.sample(states, 2)
                    changed = {a: codes[b], b: codes[a]}
                else:
                    used = set(codes.values())
                    free = [
                        format(v, f"0{width}b")
                        for v in range(1 << width)
                        if format(v, f"0{width}b") not in used
                    ]
                    if not free:
                        continue
                    changed = {rng.choice(states): rng.choice(free)}
                estimate, patch = scored.preview(
                    {s: int(c, 2) for s, c in changed.items()}
                )
                codes.update(changed)
                expected = estimate_product_terms(
                    fsm, StateEncoding(width, codes), lfsr, structure
                )
                assert estimate == expected, (trial, structure)
                scored.commit(patch)
                assert scored.estimate == expected
                assert scored.code_strings() == codes

    def test_register_width_mismatch_raises(self, small_controller):
        encoding = random_encoding(small_controller, seed=9)
        with pytest.raises(ValueError, match="register width"):
            ScoredEncoding(
                small_controller, encoding,
                LFSR.with_primitive_polynomial(encoding.width + 1), "pst",
            )

    def test_preview_without_commit_is_side_effect_free(self, small_controller):
        encoding = random_encoding(small_controller, seed=9)
        lfsr = LFSR.with_primitive_polynomial(encoding.width)
        scored = ScoredEncoding(small_controller, encoding, lfsr, "pst")
        before = scored.estimate
        states = list(encoding.codes)
        codes = dict(encoding.codes)
        scored.preview({states[0]: int(codes[states[1]], 2),
                        states[1]: int(codes[states[0]], 2)})
        assert scored.estimate == before
        assert scored.code_strings() == codes
        full = estimate_product_terms(small_controller, encoding, lfsr, "pst")
        assert scored.estimate == full


class TestSwapCandidateBounding:
    def test_wide_register_move_generation_is_bounded(self):
        rng = random.Random(0)
        states = [f"s{i}" for i in range(10)]
        width = 16  # 65536 codes; exhaustive enumeration would dominate
        codes = {s: format(i, f"0{width}b") for i, s in enumerate(states)}
        moves = _swap_candidates(states, codes, width, limit=10_000, rng=rng)
        move_targets = [m for m in moves if m[0] == "move"]
        # 10 states x bounded sample (64) + 45 swaps, far below 2**16.
        assert len(move_targets) <= len(states) * 64
        assert len(moves) <= len(states) * 64 + 45
        for _, state, code in move_targets:
            assert code not in codes.values()

    def test_minimal_width_keeps_exhaustive_enumeration(self):
        # At (near-)minimal width the legacy exhaustive branch must be taken,
        # which is what keeps the random stream identical to the reference.
        states = [f"s{i}" for i in range(6)]
        codes = {s: format(i, f"03b") for i, s in enumerate(states)}
        moves_a = _swap_candidates(states, codes, 3, limit=10_000, rng=random.Random(5))
        moves_b = _swap_candidates(states, codes, 3, limit=10_000, rng=random.Random(5))
        assert moves_a == moves_b
        unused = {m[2] for m in moves_a if m[0] == "move"}
        assert unused == {"110", "111"}
