"""Tests for the staged flow pipeline, artifact cache and sweep orchestrator."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.bist import BISTStructure, compare_structures, synthesize
from repro.cli import main
from repro.encoding import random_search
from repro.flow import (
    ArtifactCache,
    FlowConfig,
    FlowResult,
    StageResult,
    Sweep,
    SweepResult,
    add_flow_arguments,
    config_from_args,
    fsm_digest,
    run_flow,
)
from repro.fsm import load_benchmark, write_kiss_file


# --------------------------------------------------------------- FlowConfig


class TestFlowConfig:
    def test_round_trip_identity(self):
        config = FlowConfig(
            structure="SIG", width=5, seed=3, multi_start=2,
            fault_patterns=256, word_width=64, fault_collapse=True,
        )
        assert FlowConfig.from_dict(config.to_dict()) == config

    def test_default_round_trip(self):
        config = FlowConfig()
        assert FlowConfig.from_dict(config.to_dict()) == config
        json.dumps(config.to_dict())  # JSON-safe

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FlowConfig fields"):
            FlowConfig.from_dict({"structure": "PST", "turbo": True})

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowConfig(structure="JK")
        with pytest.raises(ValueError):
            FlowConfig(engine="quantum")
        with pytest.raises(ValueError):
            FlowConfig(multi_start=0)

    def test_synthesis_options_round_trip(self):
        config = FlowConfig(width=4, beam_width=6, multi_start=3, jobs=2, seed=7)
        options = config.to_synthesis_options()
        assert options.width == 4 and options.beam_width == 6
        again = FlowConfig.from_synthesis_options(options, structure="DFF")
        assert again.structure == "DFF"
        assert again.to_synthesis_options() == options

    def test_digest_changes_with_fields(self):
        base = FlowConfig()
        assert base.digest() != base.replace(seed=1).digest()
        assert base.digest() == FlowConfig().digest()

    def test_stage_digest_ignores_jobs_and_later_stages(self):
        base = FlowConfig()
        # jobs is result-identical parallelism: never invalidates artifacts.
        assert base.stage_digest("assign") == base.replace(jobs=8).stage_digest("assign")
        assert base.stage_digest("faultsim") == base.replace(jobs=8).stage_digest("faultsim")
        # fault knobs do not invalidate upstream synthesis artifacts.
        changed = base.replace(fault_patterns=512)
        assert base.stage_digest("assign") == changed.stage_digest("assign")
        assert base.stage_digest("minimize") == changed.stage_digest("minimize")
        assert base.stage_digest("faultsim") != changed.stage_digest("faultsim")
        # assignment knobs invalidate everything downstream.
        reseeded = base.replace(seed=9)
        assert base.stage_digest("assign") != reseeded.stage_digest("assign")
        assert base.stage_digest("minimize") != reseeded.stage_digest("minimize")

    def test_stage_digest_unknown_stage(self):
        with pytest.raises(ValueError, match="no cache digest"):
            FlowConfig().stage_digest("teleport")

    def test_argparse_bridge_defaults_match_config(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_flow_arguments(parser, structure=True)
        args = parser.parse_args([])
        assert config_from_args(args) == FlowConfig()

    def test_argparse_bridge_overrides(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_flow_arguments(parser, structure=True)
        args = parser.parse_args(
            ["--structure", "DFF", "--multi-start", "3", "--word-width", "64"]
        )
        config = config_from_args(args, fault_patterns=128)
        assert config.structure == "DFF"
        assert config.multi_start == 3
        assert config.word_width == 64
        assert config.fault_patterns == 128


# ----------------------------------------------------------------- run_flow


class TestRunFlow:
    def test_parity_with_synthesize(self, small_controller):
        for structure in (BISTStructure.PST, BISTStructure.DFF, BISTStructure.PAT):
            legacy = synthesize(small_controller, structure)
            result = run_flow(small_controller, FlowConfig(structure=structure.value))
            assert result.product_terms == legacy.product_terms
            assert result.sop_literals == legacy.sop_literals
            assert result.multilevel_literals == legacy.multilevel_literals()
            assert result.encoding["codes"] == dict(legacy.encoding.codes)

    def test_stage_names_in_order(self, small_controller):
        result = run_flow(small_controller)
        assert [s.name for s in result.stages] == [
            "parse", "assign", "excite", "minimize", "report",
        ]
        with_faults = run_flow(small_controller, FlowConfig(fault_patterns=32, word_width=16))
        assert [s.name for s in with_faults.stages] == [
            "parse", "assign", "excite", "minimize", "faultsim", "report",
        ]

    def test_faultsim_parity_with_simulator(self, small_controller):
        from repro.circuit.faults import FaultSimulator, enumerate_faults
        from repro.circuit.netlist import netlist_from_controller

        controller = synthesize(small_controller, BISTStructure.PST)
        circuit = netlist_from_controller(controller)
        simulator = FaultSimulator(circuit, word_width=16)
        direct = simulator.coverage_for_random_patterns(
            100, seed=0, faults=enumerate_faults(circuit)
        )
        result = run_flow(
            small_controller,
            FlowConfig(structure="PST", fault_patterns=100, word_width=16),
        )
        assert result.fault_coverage == pytest.approx(direct.coverage)
        assert result.metrics["fault_total"] == direct.total_faults
        assert result.metrics["patterns_simulated"] == 100
        assert result.coverage_curve == [[c, v] for c, v in direct.coverage_curve()]

    def test_accepts_benchmark_name_and_path(self, small_controller, tmp_path):
        by_name = run_flow("dk512")
        assert by_name.fsm == "dk512"
        path = tmp_path / "machine.kiss2"
        write_kiss_file(small_controller, path)
        by_path = run_flow(path)
        assert by_path.fsm == "machine"

    def test_materialize_attaches_controller(self, small_controller):
        result = run_flow(small_controller, materialize=True)
        assert result.controller is not None
        assert result.controller.product_terms == result.product_terms

    def test_result_round_trip(self, small_controller):
        result = run_flow(small_controller, FlowConfig(fault_patterns=32, word_width=16))
        data = result.to_dict()
        json.dumps(data)  # JSON-safe
        assert FlowResult.from_dict(data).to_dict() == data

    def test_fsm_digest_sensitive_to_state_order(self, small_controller):
        from repro.fsm import FSM

        reordered = FSM(
            small_controller.name,
            small_controller.num_inputs,
            small_controller.num_outputs,
            small_controller.transitions,
            reset_state=small_controller.reset_state,
            states=list(reversed(small_controller.states)),
        )
        assert fsm_digest(small_controller) != fsm_digest(reordered)


# -------------------------------------------------------------------- cache


class TestArtifactCache:
    def test_warm_run_serves_every_stage(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        config = FlowConfig(fault_patterns=64, word_width=16)
        cold = run_flow(small_controller, config, cache=cache)
        assert not cold.all_cached
        warm = run_flow(small_controller, config, cache=cache)
        assert warm.all_cached
        assert [s.cached for s in warm.cacheable_stages] == [True, True, True, True]
        assert dict(warm.metrics) == dict(cold.metrics)
        assert warm.coverage_curve == cold.coverage_curve
        assert warm.uncached_seconds == 0

    def test_warm_run_does_zero_stage_work(self, small_controller, tmp_path, monkeypatch):
        import repro.flow.pipeline as pipeline

        cache = ArtifactCache(tmp_path / "cache")
        config = FlowConfig(fault_patterns=64, word_width=16)
        run_flow(small_controller, config, cache=cache)

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("stage work on a warm cache")

        monkeypatch.setattr(pipeline, "assign_states", boom)
        monkeypatch.setattr(pipeline, "derive_excitation", boom)
        monkeypatch.setattr(pipeline, "minimize_excitation", boom)
        warm = run_flow(small_controller, config, cache=cache)
        assert warm.all_cached

    def test_fault_knob_change_keeps_synthesis_artifacts(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_flow(small_controller, FlowConfig(fault_patterns=64, word_width=16), cache=cache)
        changed = run_flow(
            small_controller, FlowConfig(fault_patterns=32, word_width=16), cache=cache
        )
        assert changed.stage("assign").cached
        assert changed.stage("minimize").cached
        assert not changed.stage("faultsim").cached

    def test_seed_change_misses(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_flow(small_controller, FlowConfig(), cache=cache)
        reseeded = run_flow(small_controller, FlowConfig(seed=5), cache=cache)
        assert not reseeded.stage("assign").cached

    def test_materialize_from_warm_cache(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        legacy = synthesize(small_controller, BISTStructure.PST)
        run_flow(small_controller, cache=cache)
        warm = run_flow(small_controller, cache=cache, materialize=True)
        assert warm.all_cached
        controller = warm.controller
        assert controller.product_terms == legacy.product_terms
        assert dict(controller.encoding.codes) == dict(legacy.encoding.codes)
        # The reconstructed controller supports the netlist/Verilog path.
        from repro.circuit.verilog import controller_to_verilog

        assert "module" in controller_to_verilog(controller)

    def test_corrupt_artifact_is_a_miss(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_flow(small_controller, cache=cache)
        for path in (tmp_path / "cache").glob("*/*.json"):
            path.write_text("{not json")
        again = run_flow(small_controller, cache=cache)
        assert not again.stage("assign").cached

    def test_non_dict_json_artifact_is_a_miss(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_flow(small_controller, cache=cache)
        for path in (tmp_path / "cache").glob("*/*.json"):
            path.write_text("[]")
        again = run_flow(small_controller, cache=cache)
        assert not again.stage("assign").cached

    def test_non_utf8_artifact_is_a_miss(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_flow(small_controller, cache=cache)
        for path in (tmp_path / "cache").glob("*/*.json"):
            path.write_bytes(b"\xff\xfe\x00garbage")
        again = run_flow(small_controller, cache=cache)
        assert not again.stage("assign").cached

    def test_caller_implicants_bypass_cache(self, small_controller, tmp_path):
        from repro.logic.symbolic import symbolic_minimize

        cache = ArtifactCache(tmp_path / "cache")
        run_flow(small_controller, cache=cache)
        implicants = symbolic_minimize(small_controller.completed())
        custom = run_flow(small_controller, cache=cache, implicants=implicants)
        # Neither served from nor written to the cache: the implicants are
        # not part of the stage digests, so sharing keys would poison them.
        assert not custom.stage("assign").cached
        warm = run_flow(small_controller, cache=cache)
        assert warm.all_cached

    def test_clear_and_len(self, small_controller, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_flow(small_controller, cache=cache)
        assert len(cache) == 3  # assign, excite, minimize
        assert cache.clear() == 3
        assert len(cache) == 0


# -------------------------------------------------------------------- sweep


class TestSweep:
    NAMES = ["dk512", "ex4"]

    def test_matches_legacy_benchmark_path(self):
        sweep = Sweep(self.NAMES, structures=("PST", "DFF", "PAT"),
                      random_trials=2, random_seed=1991).run()
        for name in self.NAMES:
            machine = load_benchmark(name)
            search = random_search(
                machine,
                lambda enc, m=machine: synthesize(
                    m, BISTStructure.PST, encoding=enc
                ).product_terms,
                trials=2,
                seed=1991,
            )
            baseline = sweep.baselines[name]
            assert baseline.average == search.average_cost
            assert baseline.best == int(search.best_cost)
            for structure in (BISTStructure.PST, BISTStructure.DFF, BISTStructure.PAT):
                legacy = synthesize(machine, structure)
                cell = sweep.result_for(name, structure.value)
                assert cell.product_terms == legacy.product_terms, (name, structure)

    def test_jobs_do_not_change_results(self, tmp_path):
        serial = Sweep(self.NAMES, structures=("PST", "DFF")).run()
        pooled = Sweep(self.NAMES, structures=("PST", "DFF"), jobs=2).run()
        assert [dict(r.metrics) for r in serial.results] == [
            dict(r.metrics) for r in pooled.results
        ]
        assert [(r.fsm, r.structure) for r in serial.results] == [
            (r.fsm, r.structure) for r in pooled.results
        ]

    def test_second_run_served_from_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = Sweep(self.NAMES, random_trials=2, cache=cache).run()
        assert not cold.all_cached
        warm = Sweep(self.NAMES, random_trials=2, cache=cache).run()
        assert warm.all_cached
        assert warm.uncached_seconds == 0
        assert [dict(r.metrics) for r in warm.results] == [
            dict(r.metrics) for r in cold.results
        ]
        assert warm.baselines["dk512"].cached

    def test_round_trip(self):
        sweep = Sweep(["dk512"], structures=("PST",), random_trials=1).run()
        data = sweep.to_dict()
        json.dumps(data)
        assert SweepResult.from_dict(data).to_dict() == data

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            Sweep([])
        with pytest.raises(ValueError):
            Sweep(["dk512"], structures=())


# --------------------------------------------------------- compat wrappers


class TestCompatWrappers:
    def test_compare_structures_matches_flow(self, small_controller):
        comparison = compare_structures(
            small_controller, structures=(BISTStructure.DFF, BISTStructure.PST)
        )
        for structure in (BISTStructure.DFF, BISTStructure.PST):
            legacy = synthesize(small_controller, structure)
            metric = comparison.metric_for(structure)
            assert metric.product_terms == legacy.product_terms
            assert metric.sop_literals == legacy.sop_literals
            controller = comparison.controllers[structure]
            assert controller.product_terms == legacy.product_terms

    def test_top_level_exports(self):
        assert repro.run_flow is run_flow
        assert repro.FlowConfig is FlowConfig
        assert repro.Sweep is Sweep
        for name in ("run_flow", "Sweep", "FlowConfig", "FlowResult",
                     "ArtifactCache", "synthesize", "FaultSimulator"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


# ------------------------------------------------------------------ CLI JSON


class TestCliJson:
    #: Golden headline metrics of the two seed benchmarks (synthetic
    #: stand-ins are deterministic, so these values are stable).
    GOLDEN = {
        "dk512": {"state_bits": 4, "product_terms": 11, "sop_literals": 85,
                  "multilevel_literals": 84, "register_polynomial": 19},
        "ex4": {"state_bits": 4, "product_terms": 15, "sop_literals": 173,
                "multilevel_literals": 170, "register_polynomial": 19},
    }

    @pytest.fixture
    def kiss_for(self, tmp_path):
        def _write(name: str) -> Path:
            path = tmp_path / f"{name}.kiss2"
            write_kiss_file(load_benchmark(name), path)
            return path
        return _write

    def test_synthesize_json_golden(self, capsys):
        # Benchmark names resolve through the registry, so the goldens pin
        # the full chain: registry -> flow -> serialized result.
        for name, golden in self.GOLDEN.items():
            result = run_flow(name, FlowConfig(structure="PST"))
            data = result.to_dict()
            assert data["schema"] == "repro.flow-result/1"
            for key, value in golden.items():
                assert data["metrics"][key] == value, (name, key)

    def test_cli_synthesize_json_schema(self, kiss_for, capsys):
        # A .kiss2 file declares states in transition-appearance order, so
        # the expectation comes from the same parsed machine (state order is
        # part of the input — see test_fsm_digest_sensitive_to_state_order).
        from repro.fsm import parse_kiss_file

        path = kiss_for("dk512")
        expected = run_flow(parse_kiss_file(path), FlowConfig(structure="PST"))
        exit_code = main(["synthesize", str(path), "--json"])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.flow-result/1"
        assert data["structure"] == "PST"
        assert data["metrics"] == dict(expected.metrics)
        assert [s["name"] for s in data["stages"]] == [
            "parse", "assign", "excite", "minimize", "report",
        ]

    def test_cli_faultsim_json(self, kiss_for, capsys):
        exit_code = main([
            "faultsim", str(kiss_for("ex4")), "--patterns", "64",
            "--word-width", "16", "--json",
        ])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.flow-result/1"
        assert data["metrics"]["patterns_simulated"] == 64
        assert 0.0 <= data["metrics"]["fault_coverage"] <= 1.0
        assert data["coverage_curve"]

    def test_cli_compare_json(self, kiss_for, capsys):
        exit_code = main(["compare", str(kiss_for("dk512")), "--json"])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.flow-comparison/1"
        structures = [r["structure"] for r in data["results"]]
        assert structures == ["DFF", "PAT", "SIG", "PST"]
        assert all(r["schema"] == "repro.flow-result/1" for r in data["results"])

    def test_cli_benchmarks_json(self, capsys):
        exit_code = main(["benchmarks", "--names", "dk512", "--trials", "1", "--json"])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.flow-sweep/3"
        assert data["machines"] == ["dk512"]
        pst = [r for r in data["results"] if r["structure"] == "PST"][0]
        assert pst["metrics"]["product_terms"] == self.GOLDEN["dk512"]["product_terms"]
        assert "dk512" in data["baselines"]

    def test_cli_benchmarks_seed_routed_into_cells(self, capsys):
        exit_code = main(["benchmarks", "--names", "dk512", "--trials", "1",
                          "--seed", "5", "--json"])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["seeds"] == [5]
        assert all(r["config"]["seed"] == 5 for r in data["results"])

    def test_cli_validate_json(self, kiss_for, capsys):
        exit_code = main(["validate", str(kiss_for("dk512")), "--json"])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_cli_version(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == repro.__version__
        assert main(["version", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == {"version": repro.__version__}

    def test_cli_version_flag_exits(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_cli_cache_dir_round_trip(self, kiss_for, capsys):
        path = kiss_for("dk512")
        import tempfile

        with tempfile.TemporaryDirectory() as cache_dir:
            main(["synthesize", str(path), "--cache-dir", cache_dir, "--json"])
            cold = json.loads(capsys.readouterr().out)
            main(["synthesize", str(path), "--cache-dir", cache_dir, "--json"])
            warm = json.loads(capsys.readouterr().out)
        assert all(not s["cached"] for s in cold["stages"])
        work_stages = [s for s in warm["stages"] if s["name"] not in ("parse", "report")]
        assert all(s["cached"] for s in work_stages)
        assert warm["metrics"] == cold["metrics"]
