"""Unit tests for fault enumeration, fault simulation and self-test sessions."""

from __future__ import annotations

import pytest

from repro.bist import BISTStructure, synthesize
from repro.circuit import (
    FaultSimulator,
    Netlist,
    StuckAtFault,
    compare_test_lengths,
    enumerate_faults,
    netlist_from_controller,
    simulate_conventional_self_test,
    simulate_parallel_self_test,
    patterns_for_coverage,
)


def _and_gate_netlist() -> Netlist:
    net = Netlist("and2")
    net.add_primary_input("a")
    net.add_primary_input("b")
    net.add_gate("z", "AND", ["a", "b"])
    net.mark_output("z")
    return net


class TestEnumerateFaults:
    def test_stem_faults_for_every_signal(self):
        net = _and_gate_netlist()
        faults = enumerate_faults(net, include_branches=False)
        assert len(faults) == 2 * 3  # a, b, z each stuck-at-0/1

    def test_branch_faults_only_on_fanout(self):
        net = _and_gate_netlist()
        net.add_gate("w", "NOT", ["a"])  # a now fans out to two gates
        net.mark_output("w")
        faults = enumerate_faults(net, include_branches=True)
        branch_faults = [f for f in faults if f.gate_input is not None]
        assert branch_faults
        assert all(f.signal == "a" for f in branch_faults)

    def test_describe(self):
        fault = StuckAtFault("z", 1)
        assert fault.describe() == "z stuck-at-1"
        branch = StuckAtFault("a", 0, gate_input="z")
        assert "a->z" in branch.describe()


class TestFaultSimulator:
    def test_and_gate_faults_detected(self):
        net = _and_gate_netlist()
        simulator = FaultSimulator(net, word_width=1)
        # Exhaustive input sequence detects every stuck-at fault of an AND gate.
        sequence = [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 0}]
        result = simulator.run(sequence)
        assert result.coverage == pytest.approx(1.0)

    def test_undetected_fault_reported(self):
        net = _and_gate_netlist()
        simulator = FaultSimulator(net, word_width=1)
        # Only applying a=b=0 cannot detect z stuck-at-0.
        result = simulator.run([{"a": 0, "b": 0}], stop_when_all_detected=False)
        assert result.coverage < 1.0
        assert "z stuck-at-0" not in result.detected

    def test_detection_cycles_recorded(self):
        net = _and_gate_netlist()
        simulator = FaultSimulator(net, word_width=1)
        result = simulator.run([{"a": 1, "b": 1}, {"a": 0, "b": 1}])
        assert result.detection_cycle["z stuck-at-0"] == 1

    def test_coverage_curve_monotone(self):
        net = _and_gate_netlist()
        simulator = FaultSimulator(net, word_width=1)
        result = simulator.run(
            [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 0}],
            stop_when_all_detected=False,
        )
        curve = result.coverage_curve()
        assert all(b[1] >= a[1] for a, b in zip(curve, curve[1:]))
        assert curve[-1][1] == result.coverage

    def test_sequential_fault_propagation(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.DFF)
        net = netlist_from_controller(controller)
        simulator = FaultSimulator(net, word_width=1)
        result = simulator.coverage_for_random_patterns(64, seed=3)
        assert 0.0 < result.coverage <= 1.0


class TestSelfTest:
    def test_parallel_self_test_runs(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.PST)
        result = simulate_parallel_self_test(controller, max_patterns=48, seed=1)
        assert result.structure is BISTStructure.PST
        assert result.patterns_applied == 48
        assert 0.0 < result.fault_coverage <= 1.0
        assert result.signature is not None
        assert len(result.signature) == controller.encoding.width

    def test_conventional_self_test_runs(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.DFF)
        result = simulate_conventional_self_test(controller, max_patterns=48, seed=1)
        assert result.structure is BISTStructure.DFF
        assert 0.0 < result.fault_coverage <= 1.0
        assert result.signature is None

    def test_patterns_for_coverage(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.PST)
        result = simulate_parallel_self_test(controller, max_patterns=64, seed=0)
        length = patterns_for_coverage(result, 0.5)
        if length is not None:
            assert 1 <= length <= 64
        assert patterns_for_coverage(result, 1.1) is None

    def test_compare_test_lengths_summary(self, small_controller):
        pst_controller = synthesize(small_controller, BISTStructure.PST)
        dff_controller = synthesize(small_controller, BISTStructure.DFF)
        pst = simulate_parallel_self_test(pst_controller, max_patterns=64, seed=2)
        dff = simulate_conventional_self_test(dff_controller, max_patterns=64, seed=2)
        summary = compare_test_lengths(pst, dff, target=0.5)
        assert summary["target_coverage"] == 0.5
        assert "ratio" in summary
        assert summary["pst_final_coverage"] == pytest.approx(pst.fault_coverage)
