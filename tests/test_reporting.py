"""Unit tests for the text table rendering helpers."""

from __future__ import annotations

import pytest

from repro.reporting import format_comparison, format_paper_vs_measured, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"], [["dk16", 76], ["tbk", 159]], title="Table 2")
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "dk16" in lines[3]

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["x"], [[91.7]])
        assert "91.70" in text


class TestFormatComparison:
    def test_dict_rows(self):
        rows = [{"structure": "PST", "terms": 10}, {"structure": "DFF", "terms": 12}]
        text = format_comparison(rows, title="cmp")
        assert "PST" in text and "DFF" in text
        assert text.splitlines()[0] == "cmp"

    def test_empty_rows(self):
        assert format_comparison([], title="nothing") == "nothing"


class TestPaperVsMeasured:
    def test_benchmark_column_first(self):
        rows = [{"paper": 76, "benchmark": "dk16", "measured": 79}]
        text = format_paper_vs_measured(rows)
        header = text.splitlines()[0].split()
        assert header[0] == "benchmark"

    def test_empty(self):
        assert format_paper_vs_measured([], title="t") == "t"
