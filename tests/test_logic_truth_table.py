"""Unit tests for the symbolic truth-table builder."""

from __future__ import annotations

import pytest

from repro.logic import TruthTable


class TestTruthTable:
    def test_row_validation(self):
        table = TruthTable(2, 2)
        with pytest.raises(ValueError):
            table.add_row("101", "10")
        with pytest.raises(ValueError):
            table.add_row("10", "102")
        with pytest.raises(ValueError):
            table.add_row("1x", "10")

    def test_to_covers_split_on_and_dc(self):
        table = TruthTable(2, 2)
        table.add_row("1-", "1-")
        table.add_row("0-", "01")
        on, dc = table.to_covers()
        assert len(on) == 2
        assert len(dc) == 1
        # Output 0 ON-set is the cube 1-, output 1 DC-set is the cube 1-.
        assert on.cubes_for_output(0)[0].input_string() == "1-"
        assert dc.cubes_for_output(1)[0].input_string() == "1-"

    def test_all_zero_row_contributes_nothing(self):
        table = TruthTable(2, 1)
        table.add_row("11", "0")
        on, dc = table.to_covers()
        assert len(on) == 0
        assert len(dc) == 0

    def test_dont_care_row(self):
        table = TruthTable(3, 2)
        table.add_dont_care_row("1--")
        on, dc = table.to_covers()
        assert len(on) == 0
        assert len(dc) == 1
        assert dc.cubes[0].outputs == 0b11

    def test_rows_property_and_len(self):
        table = TruthTable(1, 1)
        table.add_row("1", "1")
        table.add_row("0", "0")
        assert len(table) == 2
        assert table.rows[0].inputs == "1"

    def test_pla_text(self):
        table = TruthTable(2, 1)
        table.add_row("1-", "1")
        text = table.to_pla_text()
        assert ".i 2" in text
        assert ".o 1" in text
        assert "1- 1" in text
        assert text.rstrip().endswith(".e")
