"""Tests for the AST invariant linter (`repro lint`, :mod:`repro.analysis`).

Every rule gets three fixtures — one violating, one clean, one
pragma-suppressed — plus the regressions the rules exist for: a
``FlowConfig`` field absent from every ``_STAGE_KEYS`` tuple must be
flagged, and the real source tree must lint clean (the same gate CI runs
blocking).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Finding,
    LintReport,
    default_rules,
    lint_paths,
    lint_source,
    rules_by_name,
)
from repro.analysis.core import extract_pragmas, module_name_for_path
from repro.cli import main

PACKAGE_DIR = Path(repro.__file__).parent

FLOW_MODULE = "repro.flow.fixture"
OUTSIDE_MODULE = "repro.reporting.fixture"


def findings_for(text: str, rule: str, module: str = FLOW_MODULE):
    report = lint_source(text, module=module)
    return [f for f in report.findings if f.rule == rule and not f.suppressed]


# ------------------------------------------------------------------ framework


class TestFramework:
    def test_module_name_for_path(self):
        assert module_name_for_path("src/repro/flow/config.py") == "repro.flow.config"
        assert module_name_for_path("src/repro/flow/__init__.py") == "repro.flow"
        assert module_name_for_path("/tmp/fixture.py") == "fixture"

    def test_pragma_extraction(self):
        text = "x = 1  # repro: allow-determinism -- justified\ny = 2\n"
        assert extract_pragmas(text) == {1: {"determinism"}}

    def test_pragma_suppresses_same_line_and_line_below(self):
        same_line = "import time\nt = time.time()  # repro: allow-determinism\n"
        line_above = (
            "import time\n"
            "# repro: allow-determinism -- lease clock\n"
            "t = time.time()\n"
        )
        for text in (same_line, line_above):
            report = lint_source(text, module=FLOW_MODULE)
            assert not findings_for(text, "determinism")
            assert any(f.rule == "determinism" and f.suppressed for f in report.findings)

    def test_suppressed_findings_still_reported_in_json(self):
        text = "import time\nt = time.time()  # repro: allow-determinism\n"
        data = lint_source(text, module=FLOW_MODULE).to_dict()
        assert data["schema"] == "repro.lint/1"
        assert data["ok"] is True
        assert data["findings"] == []
        assert len(data["suppressed"]) == 1
        assert data["suppressed"][0]["rule"] == "determinism"

    def test_report_round_trips(self):
        text = "import time\nt = time.time()\nu = time.time()  # repro: allow-determinism\n"
        report = lint_source(text, module=FLOW_MODULE)
        rebuilt = LintReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.findings == report.findings
        assert rebuilt.files == report.files
        assert rebuilt.ok == report.ok

    def test_syntax_error_is_reported_not_raised(self):
        report = lint_source("def broken(:\n", path="bad.py")
        assert not report.ok
        assert report.errors and "syntax error" in report.errors[0][1]

    def test_unknown_rule_name_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            default_rules(["no-such-rule"])

    def test_registry_names(self):
        assert set(rules_by_name()) == {
            "determinism",
            "digest-completeness",
            "serialization-roundtrip",
            "atomic-write",
            "unordered-iteration",
            "swallowed-exception",
        }


# ------------------------------------------------------------ R1 determinism


class TestDeterminismRule:
    VIOLATIONS = [
        "import time\nt = time.time()\n",
        "import random\nr = random.Random()\n",
        "import random\nx = random.random()\n",
        "import random\nrandom.seed(3)\n",
        "from datetime import datetime\nd = datetime.now()\n",
        "import uuid\nu = uuid.uuid4()\n",
        "import os\nb = os.urandom(8)\n",
        "from time import time\nt = time()\n",
    ]

    @pytest.mark.parametrize("text", VIOLATIONS)
    def test_violations_flagged(self, text):
        assert findings_for(text, "determinism"), text

    def test_bare_reference_flagged(self):
        text = "import time\ndef f(clock=time.time):\n    return clock()\n"
        found = findings_for(text, "determinism")
        assert found and "reference" in found[0].message

    def test_clean_code_passes(self):
        text = (
            "import random\nimport time\n"
            "rng = random.Random(1991)\n"
            "start = time.perf_counter()\n"
            "mono = time.monotonic()\n"
        )
        assert not findings_for(text, "determinism")

    def test_pragma_suppressed(self):
        text = "import uuid\nnonce = uuid.uuid4().hex  # repro: allow-determinism\n"
        assert not findings_for(text, "determinism")

    def test_out_of_scope_module_ignored(self):
        text = "import time\nt = time.time()\n"
        assert not findings_for(text, "determinism", module=OUTSIDE_MODULE)


# ---------------------------------------------------- R2 digest completeness


CONFIG_TEMPLATE = """\
from dataclasses import dataclass

_ASSIGN_KEYS = ("structure", "seed")
_FAULTSIM_KEYS = _ASSIGN_KEYS + ("fault_patterns",)

_STAGE_KEYS = {{
    "assign": _ASSIGN_KEYS,
    "faultsim": _FAULTSIM_KEYS,
}}

_DIGEST_EXEMPT = frozenset({exempt})


@dataclass(frozen=True)
class FlowConfig:
    structure: str = "PST"
    seed: int = 0
    fault_patterns: int = 0
{extra_fields}"""


def config_fixture(exempt='{"jobs"}', extra_fields="    jobs: int = 1\n") -> str:
    return CONFIG_TEMPLATE.format(exempt=exempt, extra_fields=extra_fields)


class TestDigestCompletenessRule:
    def test_clean_config_passes(self):
        assert not findings_for(config_fixture(), "digest-completeness")

    def test_missing_field_flagged(self):
        text = config_fixture(
            extra_fields="    jobs: int = 1\n    poison_knob: int = 0\n"
        )
        found = findings_for(text, "digest-completeness")
        assert found and "poison_knob" in found[0].message

    def test_stale_exemption_flagged(self):
        text = config_fixture(exempt='{"jobs", "seed"}')
        found = findings_for(text, "digest-completeness")
        assert found and "seed" in found[0].message and "stale" in found[0].message

    def test_unknown_exemption_flagged(self):
        text = config_fixture(exempt='{"jobs", "ghost"}')
        found = findings_for(text, "digest-completeness")
        assert found and "ghost" in found[0].message

    def test_typo_in_stage_tuple_flagged(self):
        text = config_fixture().replace('"fault_patterns",', '"fault_pattrens",')
        found = findings_for(text, "digest-completeness")
        messages = " | ".join(f.message for f in found)
        assert "fault_pattrens" in messages  # unknown key
        assert "fault_patterns" in messages  # now-undigested field

    def test_pragma_suppressed(self):
        text = config_fixture(
            extra_fields=(
                "    jobs: int = 1\n"
                "    # repro: allow-digest-completeness -- display-only knob\n"
                "    label: str = ''\n"
            )
        )
        assert not findings_for(text, "digest-completeness")

    def test_real_flow_config_is_clean(self):
        source = (PACKAGE_DIR / "flow" / "config.py").read_text()
        assert not findings_for(source, "digest-completeness", module="repro.flow.config")

    def test_regression_new_flow_config_field_is_caught(self):
        """The cache-poisoning scenario the rule exists for: add a knob to
        the real FlowConfig without touching _STAGE_KEYS and the linter
        must object."""
        source = (PACKAGE_DIR / "flow" / "config.py").read_text()
        poisoned = source.replace(
            "    fault_collapse: bool = False\n",
            "    fault_collapse: bool = False\n    poison_knob: int = 0\n",
        )
        assert poisoned != source, "anchor line moved — update the test"
        found = findings_for(poisoned, "digest-completeness", module="repro.flow.config")
        assert found and "poison_knob" in found[0].message


# ------------------------------------------- R3 serialization round-trip


class TestSerializationRoundTripRule:
    def test_missing_from_dict_flagged(self):
        text = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Payload:\n"
            "    value: int = 0\n"
            "    def to_dict(self):\n"
            "        return {'value': self.value}\n"
        )
        found = findings_for(text, "serialization-roundtrip")
        assert found and "no from_dict" in found[0].message

    def test_uncovered_field_flagged(self):
        text = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Payload:\n"
            "    value: int = 0\n"
            "    extra: str = ''\n"
            "    def to_dict(self):\n"
            "        return {'value': self.value, 'extra': self.extra}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls(value=data['value'])\n"
        )
        found = findings_for(text, "serialization-roundtrip")
        assert found and "'extra'" in found[0].message

    def test_covering_from_dict_passes(self):
        text = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Payload:\n"
            "    value: int = 0\n"
            "    extra: str = ''\n"
            "    def to_dict(self):\n"
            "        return {'value': self.value, 'extra': self.extra}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls(value=data['value'], extra=data.get('extra', ''))\n"
        )
        assert not findings_for(text, "serialization-roundtrip")

    def test_star_star_expansion_passes(self):
        text = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Payload:\n"
            "    value: int = 0\n"
            "    def to_dict(self):\n"
            "        return {'value': self.value}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls(**dict(data))\n"
        )
        assert not findings_for(text, "serialization-roundtrip")

    def test_compare_false_field_exempt(self):
        text = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Payload:\n"
            "    value: int = 0\n"
            "    live: object = field(default=None, compare=False)\n"
            "    def to_dict(self):\n"
            "        return {'value': self.value}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls(value=data['value'])\n"
        )
        assert not findings_for(text, "serialization-roundtrip")

    def test_pragma_suppressed(self):
        text = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Summary:  # repro: allow-serialization-roundtrip -- lossy\n"
            "    value: int = 0\n"
            "    def to_dict(self):\n"
            "        return {'doubled': self.value * 2}\n"
        )
        assert not findings_for(text, "serialization-roundtrip")

    def test_non_dataclass_ignored(self):
        text = (
            "class Plain:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )
        assert not findings_for(text, "serialization-roundtrip")


# ------------------------------------------------------- R4 atomic writes


class TestAtomicWriteRule:
    def test_direct_write_flagged(self):
        text = (
            "import json\n"
            "def save(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
        )
        found = findings_for(text, "atomic-write")
        assert found and "os.replace" in found[0].message

    def test_write_text_flagged(self):
        text = "def save(path, data):\n    path.write_text(data)\n"
        assert findings_for(text, "atomic-write")

    def test_tmp_file_replace_idiom_passes(self):
        text = (
            "import json, os, tempfile\n"
            "def save(path, payload):\n"
            "    fd, tmp = tempfile.mkstemp(dir=path.parent)\n"
            "    with os.fdopen(fd, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
            "    os.replace(tmp, path)\n"
        )
        assert not findings_for(text, "atomic-write")

    def test_read_open_passes(self):
        text = "def load(path):\n    with open(path) as handle:\n        return handle.read()\n"
        assert not findings_for(text, "atomic-write")

    def test_pragma_suppressed(self):
        text = (
            "def save(path, data):\n"
            "    path.write_text(data)  # repro: allow-atomic-write -- log file\n"
        )
        assert not findings_for(text, "atomic-write")

    def test_out_of_scope_module_ignored(self):
        text = "def save(path, data):\n    path.write_text(data)\n"
        assert not findings_for(text, "atomic-write", module=OUTSIDE_MODULE)


# ------------------------------------------------- R5 unordered iteration


class TestUnorderedIterationRule:
    def test_for_over_set_literal_flagged(self):
        text = "def merge():\n    for item in {'b', 'a'}:\n        print(item)\n"
        found = findings_for(text, "unordered-iteration")
        assert found and "sorted()" in found[0].message

    def test_for_over_inferred_set_name_flagged(self):
        text = (
            "def merge(items):\n"
            "    seen = set(items)\n"
            "    out = []\n"
            "    for item in seen:\n"
            "        out.append(item)\n"
            "    return out\n"
        )
        assert findings_for(text, "unordered-iteration")

    def test_list_conversion_flagged(self):
        text = "def freeze(items):\n    return list(set(items))\n"
        assert findings_for(text, "unordered-iteration")

    def test_comprehension_over_set_flagged(self):
        text = "def freeze(items):\n    return [x for x in set(items)]\n"
        assert findings_for(text, "unordered-iteration")

    def test_sorted_iteration_passes(self):
        text = (
            "def merge(items):\n"
            "    seen = set(items)\n"
            "    return [x for x in sorted(seen)]\n"
        )
        assert not findings_for(text, "unordered-iteration")

    def test_membership_and_reductions_pass(self):
        text = (
            "def check(items, probe):\n"
            "    seen = set(items)\n"
            "    return probe in seen and len(seen) > 0 and max(seen) > 1\n"
        )
        assert not findings_for(text, "unordered-iteration")

    def test_reassignment_clears_inference(self):
        text = (
            "def merge(items):\n"
            "    seen = set(items)\n"
            "    seen = sorted(seen)\n"
            "    return [x for x in seen]\n"
        )
        assert not findings_for(text, "unordered-iteration")

    def test_pragma_suppressed(self):
        text = (
            "def merge(items):\n"
            "    # repro: allow-unordered-iteration -- order-free accumulation\n"
            "    return sum(1 for _ in set(items))\n"
        )
        assert not findings_for(text, "unordered-iteration")

    def test_out_of_scope_module_ignored(self):
        text = "def merge(items):\n    return list(set(items))\n"
        assert not findings_for(text, "unordered-iteration", module=OUTSIDE_MODULE)


# --------------------------------------------------------- whole-tree gate


class TestSwallowedExceptionRule:
    def test_bare_pass_flagged(self):
        text = (
            "def release(path):\n"
            "    try:\n"
            "        path.unlink()\n"
            "    except OSError:\n"
            "        pass\n"
        )
        found = findings_for(text, "swallowed-exception")
        assert found and "except OSError" in found[0].message
        assert found[0].line == 4  # anchored at the except line

    def test_continue_and_bare_return_flagged(self):
        loop = (
            "def drain(paths):\n"
            "    for path in paths:\n"
            "        try:\n"
            "            path.unlink()\n"
            "        except OSError:\n"
            "            continue\n"
        )
        bare_return = (
            "def touch(path):\n"
            "    try:\n"
            "        path.touch()\n"
            "    except OSError:\n"
            "        return\n"
        )
        return_none = (
            "def touch(path):\n"
            "    try:\n"
            "        path.touch()\n"
            "    except OSError:\n"
            "        return None\n"
        )
        for text in (loop, bare_return, return_none):
            assert findings_for(text, "swallowed-exception")

    def test_observable_effects_pass(self):
        reraise = (
            "def load(path):\n"
            "    try:\n"
            "        return path.read_text()\n"
            "    except OSError as exc:\n"
            "        raise RuntimeError(path) from exc\n"
        )
        counter = (
            "def load(path, stats):\n"
            "    try:\n"
            "        return path.read_text()\n"
            "    except OSError:\n"
            "        stats.failures += 1\n"
        )
        logging_call = (
            "def load(path, log):\n"
            "    try:\n"
            "        return path.read_text()\n"
            "    except OSError:\n"
            "        log('gone')\n"
        )
        returns_value = (
            "def load(path):\n"
            "    try:\n"
            "        return path.read_text()\n"
            "    except OSError:\n"
            "        return ''\n"
        )
        for text in (reraise, counter, logging_call, returns_value):
            assert not findings_for(text, "swallowed-exception")

    def test_pragma_suppressed(self):
        text = (
            "def release(path):\n"
            "    try:\n"
            "        path.unlink()\n"
            "    except OSError:  # repro: allow-swallowed-exception -- race is the protocol\n"
            "        pass\n"
        )
        assert not findings_for(text, "swallowed-exception")

    def test_out_of_scope_module_ignored(self):
        text = (
            "def release(path):\n"
            "    try:\n"
            "        path.unlink()\n"
            "    except OSError:\n"
            "        pass\n"
        )
        assert not findings_for(text, "swallowed-exception",
                                module=OUTSIDE_MODULE)


class TestTreeGate:
    def test_source_tree_lints_clean(self):
        """The same blocking gate CI runs: zero unsuppressed findings over
        the installed package tree."""
        report = lint_paths([PACKAGE_DIR])
        assert report.ok, "\n" + report.render()
        assert report.files > 50  # the walk really saw the tree

    def test_suppressions_are_justified(self):
        """Every pragma in the tree carries a justification (text after the
        rule name) — bare suppressions are as opaque as the violation."""
        report = lint_paths([PACKAGE_DIR])
        for finding in report.suppressed:
            line = Path(finding.path).read_text().splitlines()[finding.line - 1]
            # The pragma may sit on the finding line or the line above.
            if "repro: allow-" not in line:
                line = Path(finding.path).read_text().splitlines()[finding.line - 2]
            assert "repro: allow-" in line


# ------------------------------------------------------------------- CLI


class TestLintCLI:
    def test_default_invocation_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_json_schema(self, capsys):
        assert main(["lint", "--json", str(PACKAGE_DIR / "flow")]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.lint/1"
        assert data["ok"] is True
        assert set(data["rules"]) == set(rules_by_name())

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "flow" / "fixture.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "determinism" in out and "FAILED" in out

    def test_rule_subset(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "flow" / "fixture.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", "--rules", "atomic-write", str(bad)]) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--rules", "bogus"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rules_by_name():
            assert name in out
