"""Unit tests for the synthetic benchmark generators."""

from __future__ import annotations

import pytest

from repro.fsm import (
    FSMError,
    generate_controller,
    generate_counter,
    generate_random_fsm,
)


class TestGenerateController:
    def test_sizes(self):
        fsm = generate_controller("g", num_states=10, num_inputs=4, num_outputs=3, num_transitions=40, seed=5)
        assert fsm.num_states == 10
        assert fsm.num_inputs == 4
        assert fsm.num_outputs == 3

    def test_deterministic_and_complete(self):
        fsm = generate_controller("g", num_states=12, num_inputs=5, num_outputs=4, num_transitions=60, seed=2)
        assert fsm.is_deterministic()
        assert fsm.is_completely_specified()

    def test_strongly_connected(self):
        fsm = generate_controller("g", num_states=9, num_inputs=3, num_outputs=2, num_transitions=30, seed=8)
        assert fsm.is_strongly_connected()

    def test_same_seed_same_machine(self):
        a = generate_controller("g", 8, 3, 2, 24, seed=42)
        b = generate_controller("g", 8, 3, 2, 24, seed=42)
        assert a.transitions == b.transitions

    def test_different_seed_different_machine(self):
        a = generate_controller("g", 8, 3, 2, 24, seed=1)
        b = generate_controller("g", 8, 3, 2, 24, seed=2)
        assert a.transitions != b.transitions

    def test_zero_inputs(self):
        fsm = generate_controller("g", num_states=4, num_inputs=0, num_outputs=2, num_transitions=4, seed=0)
        assert fsm.num_inputs == 0
        assert fsm.is_completely_specified()

    def test_single_state(self):
        fsm = generate_controller("g", num_states=1, num_inputs=2, num_outputs=1, num_transitions=3, seed=0)
        assert fsm.num_states == 1
        assert fsm.is_completely_specified()

    def test_invalid_state_count(self):
        with pytest.raises(FSMError):
            generate_controller("g", num_states=0, num_inputs=1, num_outputs=1, num_transitions=1)

    def test_transition_budget_respected_roughly(self):
        fsm = generate_controller("g", num_states=16, num_inputs=6, num_outputs=4, num_transitions=80, seed=3)
        assert 16 <= len(fsm.transitions) <= 140

    def test_outputs_drawn_from_shared_pool(self):
        fsm = generate_controller("g", num_states=20, num_inputs=5, num_outputs=8, num_transitions=80, seed=4)
        distinct_patterns = {t.outputs for t in fsm.transitions}
        # Real controllers reuse output words; the generator must as well.
        assert len(distinct_patterns) < len(fsm.transitions) / 2


class TestGenerateCounter:
    def test_counter_structure(self):
        fsm = generate_counter("cnt", num_states=12, num_outputs=1, seed=0)
        assert fsm.num_states == 12
        assert fsm.num_inputs == 1
        assert fsm.is_deterministic()
        assert fsm.is_completely_specified()
        assert fsm.is_strongly_connected()

    def test_counter_steps_when_enabled(self):
        fsm = generate_counter("cnt", num_states=4, num_outputs=1, seed=0)
        trace = fsm.simulate(["1", "1", "1", "1"])
        assert [s for s, _ in trace] == ["c1", "c2", "c3", "c0"]

    def test_counter_holds_when_disabled(self):
        fsm = generate_counter("cnt", num_states=4, num_outputs=1, seed=0)
        trace = fsm.simulate(["0", "0"])
        assert [s for s, _ in trace] == ["c0", "c0"]


class TestGenerateRandomFsm:
    def test_incomplete_machines_possible(self):
        fsm = generate_random_fsm("r", num_states=5, num_inputs=3, num_outputs=2, seed=9, completeness=0.5)
        assert fsm.num_states <= 5
        assert not fsm.is_completely_specified()

    def test_complete_when_requested(self):
        fsm = generate_random_fsm("r", num_states=5, num_inputs=3, num_outputs=2, seed=9, completeness=1.0)
        assert fsm.is_completely_specified()

    def test_wide_inputs_rejected(self):
        with pytest.raises(FSMError):
            generate_random_fsm("r", num_states=3, num_inputs=12, num_outputs=1)

    def test_reproducible(self):
        a = generate_random_fsm("r", 6, 2, 2, seed=5)
        b = generate_random_fsm("r", 6, 2, 2, seed=5)
        assert a.transitions == b.transitions
