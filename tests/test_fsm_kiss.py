"""Unit tests for KISS2 parsing and writing."""

from __future__ import annotations

import pytest

from repro.fsm import KissFormatError, parse_kiss, parse_kiss_file, write_kiss, write_kiss_file

EXAMPLE = """
# A small controller in KISS2 format
.i 2
.o 1
.p 4
.s 2
.r st0
0- st0 st0 0
1- st0 st1 1
-0 st1 st0 0
-1 st1 st1 1
.e
"""


class TestParse:
    def test_basic_parse(self):
        fsm = parse_kiss(EXAMPLE, name="demo")
        assert fsm.name == "demo"
        assert fsm.num_inputs == 2
        assert fsm.num_outputs == 1
        assert fsm.num_states == 2
        assert fsm.reset_state == "st0"
        assert len(fsm.transitions) == 4

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment only\n\n" + EXAMPLE
        assert parse_kiss(text).num_states == 2

    def test_unspecified_next_state(self):
        text = ".i 1\n.o 1\n1 a * 1\n0 a a 0\n.e\n"
        fsm = parse_kiss(text)
        assert any(t.next == "*" for t in fsm.transitions)

    def test_missing_io_directives_rejected(self):
        with pytest.raises(KissFormatError):
            parse_kiss("0 a b 1\n")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i 1\n.o 1\n0 a b\n")

    def test_term_count_mismatch_rejected(self):
        text = ".i 1\n.o 1\n.p 5\n0 a a 1\n1 a a 0\n.e\n"
        with pytest.raises(KissFormatError):
            parse_kiss(text)

    def test_state_count_mismatch_rejected(self):
        text = ".i 1\n.o 1\n.s 3\n0 a a 1\n1 a b 0\n- b a 1\n.e\n"
        with pytest.raises(KissFormatError):
            parse_kiss(text)

    def test_unknown_directive_rejected(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i 1\n.o 1\n.frobnicate 3\n0 a a 1\n")

    def test_bad_integer_rejected(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i one\n.o 1\n0 a a 1\n")

    def test_reset_directive_arity(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i 1\n.o 1\n.r a b\n0 a a 1\n")

    def test_empty_description_rejected(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i 1\n.o 1\n.e\n")


class TestRoundTrip:
    def test_write_then_parse(self, small_controller):
        text = write_kiss(small_controller)
        again = parse_kiss(text, name=small_controller.name)
        assert again.num_states == small_controller.num_states
        assert again.num_inputs == small_controller.num_inputs
        assert again.num_outputs == small_controller.num_outputs
        assert again.reset_state == small_controller.reset_state
        assert len(again.transitions) == len(small_controller.transitions)

    def test_written_text_contains_directives(self, paper_example_fsm):
        text = write_kiss(paper_example_fsm)
        assert ".i 1" in text
        assert ".o 1" in text
        assert ".r A" in text
        assert text.rstrip().endswith(".e")

    def test_file_roundtrip(self, tmp_path, paper_example_fsm):
        path = tmp_path / "fig3.kiss2"
        write_kiss_file(paper_example_fsm, path)
        loaded = parse_kiss_file(path)
        assert loaded.name == "fig3"
        assert loaded.num_states == 3
        trace_original = paper_example_fsm.simulate(["1", "0", "1"])
        trace_loaded = loaded.simulate(["1", "0", "1"])
        assert trace_original == trace_loaded
