"""Smoke tests for the public API surface and the runnable examples."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicAPI:
    def test_version_exposed(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_reexports(self):
        # The names a downstream user reaches for first must be importable
        # from the package root.
        assert callable(repro.synthesize)
        assert callable(repro.load_benchmark)
        assert callable(repro.parse_kiss)
        assert repro.BISTStructure.PST.value == "PST"
        assert repro.FSM is repro.fsm.FSM

    def test_all_subpackages_importable(self):
        for name in ("fsm", "logic", "lfsr", "encoding", "bist", "circuit", "reporting"):
            assert hasattr(repro, name)

    def test_dunder_all_entries_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
        for module in (repro.fsm, repro.logic, repro.lfsr, repro.encoding, repro.bist, repro.circuit):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestExamples:
    @pytest.mark.parametrize("script", ["quickstart.py", "pat_smart_register.py"])
    def test_fast_examples_run(self, script):
        path = EXAMPLES_DIR / script
        assert path.exists()
        completed = subprocess.run(
            [sys.executable, str(path)], capture_output=True, text=True, timeout=240
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip()

    def test_all_examples_present(self):
        expected = {
            "quickstart.py",
            "pat_smart_register.py",
            "bist_structure_tradeoff.py",
            "fault_coverage_selftest.py",
            "mcnc_benchmark_sweep.py",
        }
        assert expected <= {p.name for p in EXAMPLES_DIR.glob("*.py")}
