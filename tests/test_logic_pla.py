"""Unit tests for espresso-format PLA reading and writing."""

from __future__ import annotations

import pytest

from repro.logic import Cover, Cube, minimize, parse_pla, parse_pla_file, write_pla, write_pla_file
from repro.logic.pla import PLAFormatError

EXAMPLE = """
# two-output example
.i 3
.o 2
.ilb a b c
.ob y z
.p 3
1-0 10
01- 01
111 1-
.e
"""


def _cover(num_inputs, num_outputs, rows):
    cover = Cover(num_inputs, num_outputs)
    for inputs, outputs in rows:
        cover.add(Cube.from_strings(inputs, outputs))
    return cover


class TestParse:
    def test_basic(self):
        on, dc, input_names, output_names = parse_pla(EXAMPLE)
        assert input_names == ["a", "b", "c"]
        assert output_names == ["y", "z"]
        assert len(on) == 3
        assert len(dc) == 1  # the '-' output of the last row

    def test_default_names(self):
        on, dc, input_names, output_names = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert input_names == ["x0", "x1"]
        assert output_names == ["f0"]
        assert len(on) == 1 and len(dc) == 0

    def test_missing_directives(self):
        with pytest.raises(PLAFormatError):
            parse_pla("11 1\n")

    def test_bad_row(self):
        with pytest.raises(PLAFormatError):
            parse_pla(".i 2\n.o 1\n11\n")

    def test_width_mismatch(self):
        with pytest.raises(PLAFormatError):
            parse_pla(".i 2\n.o 1\n111 1\n")

    def test_bad_output_character(self):
        with pytest.raises(PLAFormatError):
            parse_pla(".i 1\n.o 1\n1 x\n")

    def test_unsupported_directive(self):
        with pytest.raises(PLAFormatError):
            parse_pla(".i 1\n.o 1\n.magic\n1 1\n")

    def test_name_count_mismatch(self):
        with pytest.raises(PLAFormatError):
            parse_pla(".i 2\n.o 1\n.ilb a\n11 1\n")


class TestWrite:
    def test_roundtrip(self):
        on = _cover(3, 2, [("1-0", "10"), ("01-", "01")])
        dc = _cover(3, 2, [("111", "01")])
        text = write_pla(on, dc, ["a", "b", "c"], ["y", "z"])
        on2, dc2, input_names, output_names = parse_pla(text)
        assert input_names == ["a", "b", "c"]
        assert output_names == ["y", "z"]
        assert on2.functionally_equal(on)
        assert len(dc2) == len(dc)

    def test_dimension_mismatch(self):
        on = _cover(2, 1, [("1-", "1")])
        dc = _cover(3, 1, [("1--", "1")])
        with pytest.raises(PLAFormatError):
            write_pla(on, dc)

    def test_name_count_checked(self):
        on = _cover(2, 1, [("1-", "1")])
        with pytest.raises(PLAFormatError):
            write_pla(on, input_names=["a"])

    def test_file_roundtrip(self, tmp_path):
        on = _cover(2, 1, [("1-", "1"), ("01", "1")])
        path = tmp_path / "f.pla"
        write_pla_file(path, on)
        on2, _, _, _ = parse_pla_file(path)
        assert on2.functionally_equal(on)

    def test_minimise_then_export(self):
        on = _cover(2, 1, [("00", "1"), ("01", "1"), ("10", "1"), ("11", "1")])
        result = minimize(on)
        text = write_pla(result.cover)
        assert "--" in text
