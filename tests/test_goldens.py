"""Golden-file regression tests pinning the full FlowResult JSON.

Each seed benchmark has one golden file under ``tests/goldens/`` holding the
complete serialized :class:`~repro.flow.FlowResult` of a pinned
configuration (PST, quick minimiser, 32 fault patterns), with the
wall-clock fields normalized to zero.  Any behavioural change anywhere in
the pipeline — parsing, state assignment, excitation, minimisation, fault
simulation, metric reporting — shows up as a golden diff, which makes
accidental drift loud and intentional drift reviewable.

To regenerate after an intentional change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py -q

and commit the updated ``tests/goldens/*.json`` together with the change
that caused them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.flow import FlowConfig, run_flow
from repro.fsm.mcnc import benchmark_names

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The pinned configuration of every golden run.  ``quick`` keeps the whole
#: suite fast enough for tier-1 while still covering every stage; 32 fault
#: patterns make the faultsim stage and coverage metrics part of the pin.
GOLDEN_CONFIG = FlowConfig(
    structure="PST",
    fault_patterns=32,
    minimize_method="quick",
)

REGEN_ENV = "REPRO_REGEN_GOLDENS"


def _normalize(data: Dict[str, Any]) -> Dict[str, Any]:
    """Zero the wall-clock fields so goldens only pin behaviour.

    ``seconds``/``total_seconds`` vary run to run and ``cached`` depends on
    whether an artifact cache happens to be attached; everything else in a
    FlowResult is deterministic.
    """
    data = json.loads(json.dumps(data))
    data["total_seconds"] = 0.0
    for stage in data["stages"]:
        stage["seconds"] = 0.0
        stage["cached"] = False
    return data


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", benchmark_names())
def test_flow_result_matches_golden(name: str) -> None:
    result = _normalize(run_flow(name, GOLDEN_CONFIG).to_dict())
    path = _golden_path(name)
    if os.environ.get(REGEN_ENV):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden {path}; regenerate with {REGEN_ENV}=1 "
        "PYTHONPATH=src python -m pytest tests/test_goldens.py -q"
    )
    golden = json.loads(path.read_text())
    assert result == golden, (
        f"FlowResult for {name!r} drifted from {path}; if the change is "
        f"intentional, regenerate with {REGEN_ENV}=1 and commit the diff"
    )


def test_goldens_cover_every_benchmark() -> None:
    """One golden per seed machine, no strays."""
    if os.environ.get(REGEN_ENV):
        pytest.skip("regenerating")
    present = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))
    assert present == sorted(benchmark_names())


@pytest.mark.parametrize("name", benchmark_names())
def test_golden_files_are_schema_valid(name: str) -> None:
    """Goldens stay loadable: schema tag, config round-trip, zeroed clocks."""
    if os.environ.get(REGEN_ENV):
        pytest.skip("regenerating")
    data = json.loads(_golden_path(name).read_text())
    assert data["schema"] == "repro.flow-result/1"
    assert data["fsm"] == name
    assert FlowConfig.from_dict(data["config"]) == GOLDEN_CONFIG
    assert data["total_seconds"] == 0.0
    assert all(s["seconds"] == 0.0 and not s["cached"] for s in data["stages"])
