"""Unit tests for covers and the tautology/containment machinery."""

from __future__ import annotations

import pytest

from repro.logic import Cover, Cube
from repro.logic.cover import TautologyBudget


def _cover(num_inputs, num_outputs, rows):
    cover = Cover(num_inputs, num_outputs)
    for inputs, outputs in rows:
        cover.add(Cube.from_strings(inputs, outputs))
    return cover


class TestBasics:
    def test_add_checks_dimensions(self):
        cover = Cover(2, 1)
        with pytest.raises(Exception):
            cover.add(Cube.from_strings("101", "1"))

    def test_add_checks_output_range(self):
        cover = Cover(2, 1)
        with pytest.raises(Exception):
            cover.add(Cube.from_strings("10", "01"))

    def test_counts(self):
        cover = _cover(3, 2, [("1-0", "10"), ("0--", "01")])
        assert cover.product_term_count() == 2
        assert cover.input_literal_count() == 3
        assert cover.sop_literal_count() == 5

    def test_cubes_for_output(self):
        cover = _cover(2, 2, [("1-", "10"), ("0-", "01"), ("--", "11")])
        assert len(cover.cubes_for_output(0)) == 2
        assert len(cover.cubes_for_output(1)) == 2

    def test_merge_dimension_mismatch(self):
        with pytest.raises(Exception):
            Cover(2, 1).merged_with(Cover(3, 1))


class TestEvaluation:
    def test_evaluate_or_of_cubes(self):
        cover = _cover(2, 2, [("1-", "10"), ("01", "01")])
        assert cover.evaluate((1, 0)) == (1, 0)
        assert cover.evaluate((0, 1)) == (0, 1)
        assert cover.evaluate((0, 0)) == (0, 0)

    def test_evaluate_wrong_width(self):
        cover = _cover(2, 1, [("1-", "1")])
        with pytest.raises(Exception):
            cover.evaluate((1, 0, 1))


class TestContainment:
    def test_single_cube_containment(self):
        cover = _cover(3, 1, [("1--", "1")])
        assert cover.covers_cube(Cube.from_strings("110", "1"), 0)

    def test_union_containment_needs_tautology(self):
        # Neither cube alone covers "1--", together they do.
        cover = _cover(3, 1, [("1-0", "1"), ("1-1", "1")])
        assert cover.covers_cube(Cube.from_strings("1--", "1"), 0)

    def test_not_covered(self):
        cover = _cover(3, 1, [("1-0", "1")])
        assert not cover.covers_cube(Cube.from_strings("1--", "1"), 0)

    def test_output_specific(self):
        cover = _cover(2, 2, [("--", "10")])
        assert cover.covers_cube(Cube.from_strings("01", "1"), 0)
        assert not cover.covers_cube(Cube.from_strings("01", "1"), 1)

    def test_is_tautology(self):
        assert _cover(2, 1, [("0-", "1"), ("1-", "1")]).is_tautology(0)
        assert not _cover(2, 1, [("0-", "1"), ("11", "1")]).is_tautology(0)

    def test_three_variable_tautology(self):
        cover = _cover(3, 1, [("00-", "1"), ("01-", "1"), ("1-0", "1"), ("1-1", "1")])
        assert cover.is_tautology(0)

    def test_budget_exhaustion_is_conservative(self):
        cover = _cover(3, 1, [("1-0", "1"), ("1-1", "1")])
        exhausted = TautologyBudget(limit=0)
        assert not cover.covers_cube(Cube.from_strings("1--", "1"), 0, exhausted)

    def test_remove_single_cube_containment(self):
        cover = _cover(2, 1, [("1-", "1"), ("11", "1"), ("0-", "1")])
        reduced = cover.remove_single_cube_containment()
        assert len(reduced) == 2

    def test_functional_equality(self):
        a = _cover(2, 1, [("1-", "1"), ("01", "1")])
        b = _cover(2, 1, [("11", "1"), ("10", "1"), ("01", "1")])
        assert a.functionally_equal(b)

    def test_functional_inequality(self):
        a = _cover(2, 1, [("1-", "1")])
        b = _cover(2, 1, [("--", "1")])
        assert not a.functionally_equal(b)

    def test_functional_equality_modulo_dc(self):
        a = _cover(2, 1, [("1-", "1")])
        b = _cover(2, 1, [("--", "1")])
        dc = _cover(2, 1, [("0-", "1")])
        assert a.functionally_equal(b, dc=dc)
