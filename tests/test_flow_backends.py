"""Tests for the executor backend layer, work-queue worker daemon,
cache eviction and the execution-metadata surface."""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.flow import (
    ArtifactCache,
    FlowConfig,
    LocalPoolExecutor,
    QueueExecutor,
    SerialExecutor,
    Sweep,
    SweepResult,
    resolve_backend,
    run_cell,
    run_worker,
)
from repro.flow.backends.queue import (
    _CellState,
    ensure_queue_dirs,
    read_json,
    write_json_atomic,
)
from repro.flow.sweep import _render_cell_error

#: The quick machine set the CI queue-backend job also sweeps.
NAMES = ["dk512", "ex4"]


def normalized(sweep_dict: dict) -> dict:
    """A sweep dict with timing/cache/worker-metadata fields stripped —
    everything left must be bit-identical across backends and worker
    counts."""
    data = json.loads(json.dumps(sweep_dict))
    for key in ("total_seconds", "executor", "cache_stats"):
        data.pop(key, None)
    for result in data["results"]:
        result.pop("total_seconds", None)
        for stage in result["stages"]:
            stage.pop("seconds", None)
            stage.pop("cached", None)
    for baseline in data.get("baselines", {}).values():
        for key in ("seconds", "lookup_seconds", "cached"):
            baseline.pop(key, None)
    return data


def start_worker_thread(queue_dir: Path, worker_id: str, **kwargs) -> threading.Thread:
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("max_idle", 60.0)
    thread = threading.Thread(
        target=run_worker,
        kwargs=dict(queue_dir=queue_dir, worker_id=worker_id, **kwargs),
        daemon=True,
    )
    thread.start()
    return thread


# ---------------------------------------------------------------- resolution


class TestResolveBackend:
    def test_jobs_back_compat_mapping(self):
        assert isinstance(resolve_backend(None, jobs=1), SerialExecutor)
        pool = resolve_backend(None, jobs=3)
        assert isinstance(pool, LocalPoolExecutor)
        assert pool.jobs == 3

    def test_names(self, tmp_path):
        assert isinstance(resolve_backend("serial"), SerialExecutor)
        assert isinstance(resolve_backend("pool", jobs=2), LocalPoolExecutor)
        queue = resolve_backend("queue", queue_dir=tmp_path / "q", lease_timeout=5.0)
        assert isinstance(queue, QueueExecutor)
        assert queue.lease_timeout == 5.0

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_backend(executor) is executor

    def test_queue_requires_queue_dir(self):
        with pytest.raises(ValueError, match="queue_dir"):
            resolve_backend("queue")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend("carrier-pigeon")

    def test_sweep_exposes_executor(self, tmp_path):
        assert Sweep(NAMES).executor.name == "serial"
        assert Sweep(NAMES, jobs=2).executor.name == "pool"
        assert Sweep(NAMES, backend="queue", queue_dir=tmp_path / "q").executor.name == "queue"


# -------------------------------------------------------------------- parity


class TestCrossBackendParity:
    @pytest.fixture(scope="class")
    def serial_sweep(self):
        return Sweep(NAMES, structures=("PST", "DFF"), random_trials=2).run()

    def test_serial_metadata(self, serial_sweep):
        executor = serial_sweep.to_dict()["executor"]
        assert executor["backend"] == "serial"
        assert executor["workers"] == 1
        assert executor["cells_requeued"] == 0
        assert all(cell["worker"] == "local" for cell in executor["cells"])

    def test_pool_matches_serial(self, serial_sweep):
        pooled = Sweep(NAMES, structures=("PST", "DFF"), random_trials=2, jobs=2).run()
        assert normalized(pooled.to_dict()) == normalized(serial_sweep.to_dict())
        assert pooled.to_dict()["executor"]["backend"] == "pool"

    @pytest.mark.parametrize("workers", [1, 2])
    def test_queue_matches_serial(self, serial_sweep, tmp_path, workers):
        queue_dir = tmp_path / "queue"
        threads = [
            start_worker_thread(queue_dir, f"w{i}") for i in range(workers)
        ]
        result = Sweep(
            NAMES, structures=("PST", "DFF"), random_trials=2,
            backend=QueueExecutor(queue_dir, lease_timeout=20, timeout=120),
        ).run()
        (queue_dir / "stop").touch()
        for thread in threads:
            thread.join(timeout=30)
        assert normalized(result.to_dict()) == normalized(serial_sweep.to_dict())
        executor = result.to_dict()["executor"]
        assert executor["backend"] == "queue"
        assert set(executor["workers_seen"]) == {f"w{i}" for i in range(workers)}
        assert all(cell["worker"] in executor["workers_seen"]
                   for cell in executor["cells"])

    def test_queue_merge_is_submission_order(self, serial_sweep, tmp_path):
        queue_dir = tmp_path / "queue"
        thread = start_worker_thread(queue_dir, "w0")
        result = Sweep(
            NAMES, structures=("PST", "DFF"), random_trials=2,
            backend=QueueExecutor(queue_dir, lease_timeout=20, timeout=120),
        ).run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)
        assert [(r.fsm, r.structure) for r in result.results] == [
            (r.fsm, r.structure) for r in serial_sweep.results
        ]


# ------------------------------------------------------- lease expiry/requeue


class TestLeaseExpiry:
    def test_dead_worker_lease_is_requeued(self, tmp_path):
        """A claim whose heartbeat stops (killed worker) must expire and be
        requeued to a live worker, with the requeue counted in the
        executor metadata and no effect on the merged result."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        sweep = Sweep(
            NAMES, structures=("PST",), random_trials=2,
            backend=QueueExecutor(queue_dir, lease_timeout=0.5,
                                  poll_interval=0.02, timeout=120),
        )

        run_box: dict = {}

        def orchestrate():
            run_box["result"] = sweep.run()

        orchestrator = threading.Thread(target=orchestrate, daemon=True)
        orchestrator.start()
        # Simulate a worker that claims a cell and dies: rename one pending
        # task into claims/ and never heartbeat or finish it.
        deadline = time.monotonic() + 30
        stolen = None
        while stolen is None and time.monotonic() < deadline:
            pending = sorted(paths.tasks.glob("*.json"))
            for task_path in pending:
                claim = paths.claims / task_path.name
                try:
                    os.replace(task_path, claim)
                except OSError:
                    continue
                stolen = claim
                break
            time.sleep(0.01)
        assert stolen is not None, "no task appeared to steal"
        # Backdate the stolen claim so the lease is already stale.
        past = time.time() - 60
        os.utime(stolen, (past, past))

        thread = start_worker_thread(queue_dir, "alive", lease_timeout=0.5)
        orchestrator.join(timeout=120)
        (queue_dir / "stop").touch()
        thread.join(timeout=30)
        assert not orchestrator.is_alive(), "queue sweep did not finish"

        result = run_box["result"]
        executor = result.to_dict()["executor"]
        assert executor["cells_requeued"] >= 1
        serial = Sweep(NAMES, structures=("PST",), random_trials=2).run()
        assert normalized(result.to_dict()) == normalized(serial.to_dict())

    def test_duplicate_lease_is_idempotent(self):
        """Two workers racing the same cell (spurious requeue) produce
        bit-identical outcomes modulo the worker tag."""
        task = Sweep(NAMES, structures=("PST",)).cells()[0]
        first = run_cell(dict(task), worker="w-a")
        second = run_cell(dict(task), worker="w-b")

        def strip(outcome):
            data = json.loads(json.dumps(outcome))
            data.pop("worker")
            data["result"].pop("total_seconds")
            for stage in data["result"]["stages"]:
                stage.pop("seconds")
            return data

        assert strip(first) == strip(second)

    def test_worker_error_outcome_propagates(self, tmp_path):
        """A cell that raises worker-side must fail the sweep loudly, not
        vanish or hang."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        sweep = Sweep(["dk512"], structures=("PST",),
                      backend=QueueExecutor(queue_dir, lease_timeout=20,
                                            poll_interval=0.02, timeout=60))
        tasks = sweep.cells()
        tasks[0]["config"]["structure"] = "BOGUS"  # breaks FlowConfig.from_dict
        sweep.cells = lambda: tasks  # type: ignore[method-assign]
        thread = start_worker_thread(queue_dir, "w0")
        with pytest.raises(RuntimeError, match="failed on worker"):
            sweep.run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)


class TestInjectableClock:
    def test_lease_expiry_without_sleeping(self, tmp_path):
        """With the clock seam, lease expiry is testable by advancing a
        fake clock — no sleeps, no backdated mtimes on a live sweep."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        fake = {"now": 1_000_000.0}
        executor = QueueExecutor(queue_dir, lease_timeout=30.0,
                                 clock=lambda: fake["now"])
        cid = "00000-cell"
        claim = paths.claims / f"{cid}.json"
        write_json_atomic(claim, {"cell": cid, "task": {}, "lease_timeout": 30.0})
        os.utime(claim, (fake["now"], fake["now"]))

        states = {cid: _CellState(task={"cell": cid})}
        assert executor._expire_stale_leases(paths, [cid], states, {}) == 0
        fake["now"] += 29.0  # inside the lease window
        assert executor._expire_stale_leases(paths, [cid], states, {}) == 0
        fake["now"] += 2.0  # 31 s past the claim stamp: stale
        assert executor._expire_stale_leases(paths, [cid], states, {}) == 1
        assert (paths.tasks / f"{cid}.json").exists()
        assert not claim.exists()
        assert states[cid].attempt == 2  # the requeue consumed an attempt

    def test_finished_cells_are_never_requeued(self, tmp_path):
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        fake = {"now": 1_000_000.0}
        executor = QueueExecutor(queue_dir, lease_timeout=1.0,
                                 clock=lambda: fake["now"])
        cid = "00000-cell"
        claim = paths.claims / f"{cid}.json"
        write_json_atomic(claim, {"cell": cid, "task": {}, "lease_timeout": 1.0})
        os.utime(claim, (fake["now"] - 100, fake["now"] - 100))
        done = _CellState(task={"cell": cid})
        done.done = True
        assert executor._expire_stale_leases(paths, [cid], {cid: done}, {}) == 0
        assert claim.exists()

    def test_default_clock_is_wall_clock(self, tmp_path):
        executor = QueueExecutor(tmp_path / "q")
        before = time.time()
        assert before - 1.0 <= executor._clock() <= time.time() + 1.0


class TestStructuredWorkerErrors:
    def test_error_payload_carries_type_message_traceback(self, tmp_path):
        """A worker-side exception lands in the result file as a structured
        payload — type, message and full traceback — so a fleet failure is
        diagnosable from the queue directory alone."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        task = Sweep(["dk512"], structures=("PST",)).cells()[0]
        task["config"]["structure"] = "BOGUS"  # breaks FlowConfig.from_dict
        cid = "00000-cell"
        write_json_atomic(paths.tasks / f"{cid}.json",
                          {"cell": cid, "task": task, "lease_timeout": 5.0})

        stats = run_worker(queue_dir, worker_id="w-err", once=True)
        assert stats.cells == 1
        assert stats.failures == 1

        payload = read_json(paths.results / f"{cid}.json")
        assert payload is not None
        error = payload["outcome"]["error"]
        assert error["type"] == "ValueError"
        assert "BOGUS" in error["message"]
        assert "Traceback (most recent call last)" in error["traceback"]
        assert "ValueError" in error["traceback"].rstrip().splitlines()[-1]

    def test_sweep_failure_surfaces_type_and_traceback(self, tmp_path):
        """The orchestrator's RuntimeError carries the structured parts, so
        the root cause is in the failure message, not a worker's stderr."""
        queue_dir = tmp_path / "queue"
        sweep = Sweep(["dk512"], structures=("PST",),
                      backend=QueueExecutor(queue_dir, lease_timeout=20,
                                            poll_interval=0.02, timeout=60))
        tasks = sweep.cells()
        tasks[0]["config"]["structure"] = "BOGUS"
        sweep.cells = lambda: tasks  # type: ignore[method-assign]
        thread = start_worker_thread(queue_dir, "w0")
        with pytest.raises(RuntimeError) as excinfo:
            sweep.run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)
        message = str(excinfo.value)
        assert "failed on worker" in message
        assert "ValueError" in message
        assert "Traceback" in message

    def test_legacy_string_error_still_renders(self):
        assert _render_cell_error("boom") == "boom"
        rendered = _render_cell_error(
            {"type": "KeyError", "message": "'x'", "traceback": "tb-lines"}
        )
        assert rendered == "KeyError: 'x'\ntb-lines"
        assert _render_cell_error({"type": "OSError", "message": "gone"}) == "OSError: gone"


class TestQueueHygiene:
    def test_timeout_cleans_up_orphaned_queue_files(self, tmp_path):
        """An aborted sweep must not leave tasks behind for long-lived
        workers to burn time on."""
        queue_dir = tmp_path / "queue"
        sweep = Sweep(["dk512"], structures=("PST",),
                      backend=QueueExecutor(queue_dir, lease_timeout=20,
                                            poll_interval=0.01, timeout=0.1))
        with pytest.raises(TimeoutError, match="repro worker"):
            sweep.run()  # no workers running
        paths = ensure_queue_dirs(queue_dir)
        assert list(paths.tasks.glob("*.json")) == []
        assert list(paths.claims.glob("*.json")) == []
        assert list(paths.results.glob("*.json")) == []

    def test_stale_registration_not_counted_as_worker(self, tmp_path):
        """A kill -9'd worker's leftover registration file (old mtime) must
        not inflate the reported worker count."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        from repro.flow.backends.queue import write_json_atomic

        write_json_atomic(paths.workers / "ghost.json", {"worker": "ghost"})
        past = time.time() - 3600
        os.utime(paths.workers / "ghost.json", (past, past))
        thread = start_worker_thread(queue_dir, "live")
        result = Sweep(["dk512"], structures=("PST",),
                       backend=QueueExecutor(queue_dir, lease_timeout=20,
                                             timeout=120)).run()
        (queue_dir / "stop").touch()
        thread.join(timeout=30)
        executor = result.to_dict()["executor"]
        assert "ghost" not in executor["workers_seen"]
        assert executor["workers"] == 1

    def test_task_payload_carries_lease_timeout(self, tmp_path):
        """Workers derive their heartbeat from the orchestrator's lease
        window shipped with each task, not from matching CLI flags."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        executor = QueueExecutor(queue_dir, lease_timeout=7.5, timeout=5,
                                 poll_interval=0.01)
        box: dict = {}

        def run():
            try:
                executor.execute(Sweep(["dk512"], structures=("PST",)).cells())
            except TimeoutError:
                pass

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        while "payload" not in box and time.monotonic() < deadline:
            for task_file in paths.tasks.glob("*.json"):
                payload = read_json(task_file)
                if payload is not None:
                    box["payload"] = payload
                    break
            time.sleep(0.01)
        thread.join(timeout=30)
        assert box["payload"]["lease_timeout"] == 7.5
        assert box["payload"]["task"]["kind"] == "flow"


# -------------------------------------------------------------------- worker


class TestWorkerDaemon:
    def test_once_on_empty_queue_drains_immediately(self, tmp_path):
        stats = run_worker(tmp_path / "queue", once=True, worker_id="w0")
        assert stats.cells == 0
        assert stats.stopped_by == "drained"

    def test_stop_file_halts_worker(self, tmp_path):
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        paths.stop.touch()
        stats = run_worker(queue_dir, worker_id="w0")
        assert stats.stopped_by == "stop-file"

    def test_worker_registration_is_cleaned_up(self, tmp_path):
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        run_worker(queue_dir, once=True, worker_id="w0")
        assert not (paths.workers / "w0.json").exists()

    def test_worker_cache_dir_override(self, tmp_path):
        """A worker-local --cache-dir wins over the cell's payload value."""
        queue_dir = tmp_path / "queue"
        paths = ensure_queue_dirs(queue_dir)
        local_cache = tmp_path / "worker-cache"
        task = Sweep(["dk512"], structures=("PST",)).cells()[0]
        from repro.flow.backends.queue import write_json_atomic

        write_json_atomic(paths.tasks / "c0.json", {"cell": "c0", "task": task})
        stats = run_worker(queue_dir, once=True, worker_id="w0",
                           cache_dir=local_cache)
        assert stats.cells == 1
        assert len(ArtifactCache(local_cache)) > 0
        outcome = read_json(paths.results / "c0.json")["outcome"]
        assert outcome["worker"] == "w0"
        assert outcome["cache_stats"]["writes"] > 0


# ----------------------------------------------------- cache stats aggregation


class TestSweepCacheStats:
    def test_serial_sweep_aggregates_shared_cache_deltas(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = Sweep(NAMES, structures=("PST",), random_trials=1, cache=cache).run()
        assert cold.cache_stats["writes"] == cache.writes
        assert cold.cache_stats["misses"] == cache.misses
        assert cold.cache_stats["hits"] == 0

    def test_pooled_sweep_reports_worker_side_cache_stats(self, tmp_path):
        """With jobs > 1 the hit/miss/write counts happen in worker
        processes; they used to be silently dropped."""
        cache = ArtifactCache(tmp_path / "cache")
        cold = Sweep(NAMES, structures=("PST", "DFF"), random_trials=1,
                     cache=cache, jobs=2).run()
        assert cold.cache_stats["writes"] > 0
        assert cold.cache_stats["hits"] == 0
        warm = Sweep(NAMES, structures=("PST", "DFF"), random_trials=1,
                     cache=cache, jobs=2).run()
        assert warm.all_cached
        assert warm.cache_stats["hits"] > 0
        assert warm.cache_stats["writes"] == 0

    def test_cache_stats_in_cli_json(self, tmp_path, capsys):
        exit_code = main(["benchmarks", "--names", "dk512", "--trials", "1",
                          "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
                          "--json"])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cache_stats"]["writes"] > 0
        assert data["executor"]["backend"] == "pool"
        assert data["executor"]["workers"] == 2

    def test_round_trip_preserves_executor_and_cache_stats(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        sweep = Sweep(["dk512"], structures=("PST",), cache=cache).run()
        data = sweep.to_dict()
        again = SweepResult.from_dict(data)
        assert again.to_dict() == data
        assert dict(again.cache_stats) == dict(sweep.cache_stats)


# ------------------------------------------------------------ baseline timing


class TestBaselineSeconds:
    def test_cached_baseline_reports_stored_compute_time(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = Sweep(["dk512"], structures=("PST",), random_trials=3,
                     cache=cache).run()
        warm = Sweep(["dk512"], structures=("PST",), random_trials=3,
                     cache=cache).run()
        cold_baseline = cold.baselines["dk512"]
        warm_baseline = warm.baselines["dk512"]
        assert not cold_baseline.cached and warm_baseline.cached
        # seconds means compute time: the warm pass serves the persisted
        # wall-clock of the original computation, not its cache lookup.
        assert warm_baseline.seconds == pytest.approx(
            round(cold_baseline.seconds, 6), abs=1e-6
        )
        assert warm_baseline.lookup_seconds < cold_baseline.seconds
        assert cold_baseline.lookup_seconds == 0.0
        # The lookup is not billed as recomputed work.
        assert warm.uncached_seconds == 0.0

    def test_legacy_cache_payload_without_seconds(self, tmp_path):
        """Old cache artifacts (pre-PR) lack the stored compute time;
        they must read back as 0.0, not crash."""
        cache = ArtifactCache(tmp_path / "cache")
        Sweep(["dk512"], structures=("PST",), random_trials=2, cache=cache).run()
        for path in cache._artifact_paths():
            payload = json.loads(path.read_text())
            if "average" in payload:  # the baseline artifact
                payload.pop("seconds")
                path.write_text(json.dumps(payload))
        warm = Sweep(["dk512"], structures=("PST",), random_trials=2,
                     cache=cache).run()
        assert warm.baselines["dk512"].cached
        assert warm.baselines["dk512"].seconds == 0.0


# ----------------------------------------------------------- cache eviction


class TestCacheEviction:
    def put_sized(self, cache: ArtifactCache, key: str, size: int) -> None:
        cache.put(key, {"pad": "x" * size})

    def test_gc_evicts_oldest_first(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        keys = [f"{i:02x}{'0' * 62}" for i in range(4)]
        now = time.time()
        for age, key in enumerate(keys):
            self.put_sized(cache, key, 100)
            mtime = now - (len(keys) - age) * 100  # keys[0] oldest
            os.utime(cache.path_for(key), (mtime, mtime))
        report = cache.gc(max_bytes=2 * cache.path_for(keys[0]).stat().st_size)
        assert report["removed"] == 2
        assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
        assert cache.get(keys[2]) is not None and cache.get(keys[3]) is not None
        assert cache.evictions == 2

    def test_hit_touch_protects_recently_used(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        old_key, new_key = "aa" + "0" * 62, "bb" + "0" * 62
        self.put_sized(cache, old_key, 100)
        self.put_sized(cache, new_key, 100)
        past = time.time() - 1000
        for key in (old_key, new_key):
            os.utime(cache.path_for(key), (past, past))
        assert cache.get(old_key) is not None  # touch: now most recent
        size = cache.path_for(new_key).stat().st_size
        cache.gc(max_bytes=size)
        assert cache.get(old_key) is not None
        assert cache.get(new_key) is None

    def test_max_bytes_bounds_every_put(self, tmp_path):
        size_probe = ArtifactCache(tmp_path / "probe")
        self.put_sized(size_probe, "cc" + "0" * 62, 100)
        artifact_size = size_probe.path_for("cc" + "0" * 62).stat().st_size
        cache = ArtifactCache(tmp_path / "cache", max_bytes=3 * artifact_size)
        for i in range(8):
            self.put_sized(cache, f"{i:02x}{'1' * 62}", 100)
            time.sleep(0.01)  # distinct mtimes on coarse filesystems
        assert cache.total_bytes() <= 3 * artifact_size
        assert cache.evictions >= 5
        assert cache.get(f"{7:02x}{'1' * 62}") is not None

    def test_gc_without_bound_only_reports(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        self.put_sized(cache, "dd" + "0" * 62, 50)
        report = cache.gc()
        assert report["removed"] == 0
        assert report["total_bytes"] == cache.total_bytes()

    def test_rejects_negative_bound(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path / "cache", max_bytes=-1)


# ---------------------------------------------------------------- cache CLI


class TestCacheCli:
    def warm(self, cache_dir: Path) -> None:
        assert main(["benchmarks", "--names", "dk512", "--trials", "1",
                     "--cache-dir", str(cache_dir), "--json"]) == 0

    def test_stats_clear_gc(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        self.warm(cache_dir)
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", str(cache_dir), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["artifacts"] > 0 and stats["total_bytes"] > 0

        bound = stats["total_bytes"] // 2
        assert main(["cache", "gc", "--cache-dir", str(cache_dir),
                     "--max-bytes", str(bound), "--json"]) == 0
        gc_report = json.loads(capsys.readouterr().out)
        assert gc_report["removed"] >= 1
        assert gc_report["total_bytes"] <= bound

        assert main(["cache", "clear", "--cache-dir", str(cache_dir), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] >= 1
        assert main(["cache", "stats", "--cache-dir", str(cache_dir), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["artifacts"] == 0

    def test_gc_requires_max_bytes(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path / "c")]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_no_cache_dir_errors(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FLOW_CACHE", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "REPRO_FLOW_CACHE" in capsys.readouterr().err


# ------------------------------------------------------------------ CLI sweep


class TestSweepCli:
    def test_sweep_json_schema_and_grid(self, capsys):
        exit_code = main(["sweep", "--machines", "dk512", "--structures",
                          "PST,DFF", "--seeds", "0,1", "--json"])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.flow-sweep/3"
        assert data["seeds"] == [0, 1]
        assert len(data["results"]) == 4
        assert data["executor"]["backend"] == "serial"

    def test_sweep_text_mode_prints_execution_summary(self, capsys):
        exit_code = main(["sweep", "--machines", "dk512", "--structures", "PST"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Sweep cells" in out
        assert "Execution" in out
        assert "backend" in out

    def test_sweep_queue_backend_via_cli(self, tmp_path, capsys):
        queue_dir = tmp_path / "queue"
        thread = start_worker_thread(queue_dir, "cli-w0")
        exit_code = main(["sweep", "--machines", "dk512", "--structures", "PST",
                          "--backend", "queue", "--queue-dir", str(queue_dir),
                          "--queue-timeout", "120", "--json"])
        (queue_dir / "stop").touch()
        thread.join(timeout=30)
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["executor"]["backend"] == "queue"
        assert data["executor"]["cells"][0]["worker"] == "cli-w0"

    def test_benchmarks_backend_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["benchmarks", "--backend", "queue", "--queue-dir", "/tmp/q",
             "--lease-timeout", "5", "--queue-timeout", "60"]
        )
        assert args.backend == "queue"
        assert args.queue_dir == Path("/tmp/q")
        assert args.lease_timeout == 5.0
        assert args.queue_timeout == 60.0
