"""Unit tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.fsm import write_kiss_file


@pytest.fixture
def kiss_path(tmp_path, small_controller) -> Path:
    path = tmp_path / "controller.kiss2"
    write_kiss_file(small_controller, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_defaults(self, kiss_path):
        args = build_parser().parse_args(["synthesize", str(kiss_path)])
        assert args.structure == "PST"
        assert args.width is None

    def test_unknown_structure_rejected(self, kiss_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize", str(kiss_path), "--structure", "JK"])


class TestSynthesizeCommand:
    def test_basic_run(self, kiss_path, capsys):
        exit_code = main(["synthesize", str(kiss_path), "--structure", "DFF"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Synthesis result" in out
        assert "product terms" in out
        assert "State assignment:" in out

    def test_writes_pla_and_verilog(self, kiss_path, tmp_path, capsys):
        pla = tmp_path / "logic.pla"
        verilog = tmp_path / "controller.v"
        exit_code = main([
            "synthesize", str(kiss_path),
            "--structure", "PST",
            "--pla-out", str(pla),
            "--verilog-out", str(verilog),
        ])
        assert exit_code == 0
        assert pla.exists() and ".i " in pla.read_text()
        assert verilog.exists() and "module" in verilog.read_text()


class TestCompareCommand:
    def test_compare_prints_all_structures(self, kiss_path, capsys):
        exit_code = main(["compare", str(kiss_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        for structure in ("DFF", "PAT", "SIG", "PST"):
            assert structure in out


class TestFaultsimCommand:
    def test_faultsim_defaults(self, kiss_path):
        args = build_parser().parse_args(["faultsim", str(kiss_path)])
        assert args.engine == "compiled"
        assert args.word_width == 256
        assert args.jobs == 1
        assert not args.collapse

    def test_faultsim_runs_compiled(self, kiss_path, capsys):
        exit_code = main([
            "faultsim", str(kiss_path),
            "--patterns", "100", "--word-width", "32",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fault simulation" in out
        assert "fault coverage" in out
        assert "100" in out  # exactly the requested pattern count

    def test_faultsim_engines_agree(self, kiss_path, capsys):
        main(["faultsim", str(kiss_path), "--patterns", "64", "--word-width", "16",
              "--engine", "compiled"])
        compiled_out = capsys.readouterr().out
        main(["faultsim", str(kiss_path), "--patterns", "64", "--word-width", "16",
              "--engine", "legacy"])
        legacy_out = capsys.readouterr().out

        def coverage_line(text):
            return [l for l in text.splitlines() if "fault coverage" in l]

        assert coverage_line(compiled_out) == coverage_line(legacy_out)

    def test_faultsim_collapse_reduces_faults(self, kiss_path, capsys):
        main(["faultsim", str(kiss_path), "--patterns", "16"])
        full_out = capsys.readouterr().out
        main(["faultsim", str(kiss_path), "--patterns", "16", "--collapse"])
        collapsed_out = capsys.readouterr().out
        assert "faults (collapsed)" in collapsed_out

        def fault_count(text, label):
            for line in text.splitlines():
                if line.startswith(label):
                    return int(line.split()[-1])
            raise AssertionError(f"no {label!r} row in output")

        assert fault_count(collapsed_out, "faults (collapsed)") < fault_count(full_out, "faults ")

    def test_compare_with_fault_patterns(self, kiss_path, capsys):
        exit_code = main(["compare", str(kiss_path), "--fault-patterns", "64",
                          "--word-width", "16"])
        assert exit_code == 0
        assert "fault coverage" in capsys.readouterr().out


class TestBenchmarksCommand:
    def test_small_sweep(self, capsys):
        exit_code = main(["benchmarks", "--names", "dk512", "--trials", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "dk512" in out


class TestUniformFlowKnobs:
    """The PR 2 engine knobs are routed through every subcommand uniformly."""

    KNOBS = ["--assignment-engine", "reference", "--multi-start", "2",
             "--jobs", "2", "--word-width", "64", "--engine", "legacy"]

    @pytest.mark.parametrize("command", ["synthesize", "compare", "faultsim"])
    def test_knobs_parse_on_file_commands(self, command, kiss_path):
        args = build_parser().parse_args([command, str(kiss_path)] + self.KNOBS)
        assert args.assignment_engine == "reference"
        assert args.multi_start == 2
        assert args.jobs == 2
        assert args.word_width == 64
        assert args.engine == "legacy"

    def test_knobs_parse_on_benchmarks(self):
        args = build_parser().parse_args(["benchmarks"] + self.KNOBS)
        assert args.assignment_engine == "reference"
        assert args.multi_start == 2
        assert args.word_width == 64

    def test_compare_multi_start_runs(self, kiss_path, capsys):
        exit_code = main(["compare", str(kiss_path), "--multi-start", "2"])
        assert exit_code == 0
        assert "PST" in capsys.readouterr().out


class TestValidateCommand:
    def test_valid_machine(self, kiss_path, capsys):
        exit_code = main(["validate", str(kiss_path)])
        assert exit_code == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_machine(self, tmp_path, capsys):
        text = ".i 1\n.o 1\n.r a\n- a b 0\n1 a a 1\n- b a 0\n.e\n"
        path = tmp_path / "bad.kiss2"
        path.write_text(text)
        exit_code = main(["validate", str(path)])
        assert exit_code == 1
        assert "ERRORS" in capsys.readouterr().out


class TestCorpusAndFuzzCommands:
    def test_split_machines_keeps_corpus_specs_intact(self):
        from repro.cli import _split_machines

        raw = "dk512,corpus:ring:states=32,seed=1,outputs=2,ex4,corpus:tree"
        assert _split_machines(raw) == [
            "dk512",
            "corpus:ring:states=32,seed=1,outputs=2",
            "ex4",
            "corpus:tree",
        ]
        assert _split_machines("dk512,ex4") == ["dk512", "ex4"]

    def test_corpus_list_and_show(self, capsys):
        assert main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        assert "controller" in out and "ring" in out

        assert main(["corpus", "show", "corpus:ring:states=8,seed=1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["states"] == 8
        assert len(data["digest"]) == 64

    def test_corpus_gen_writes_kiss(self, tmp_path, capsys):
        out_path = tmp_path / "gen.kiss2"
        assert main(["corpus", "gen", "corpus:tree:states=7,seed=2",
                     "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith(".i ")
        assert main(["validate", str(out_path)]) == 0

    def test_fuzz_list_mutations(self, capsys):
        assert main(["fuzz", "--list-mutations"]) == 0
        out = capsys.readouterr().out
        assert "engine-legacy-drop" in out

    def test_sweep_accepts_corpus_spec(self, capsys):
        exit_code = main([
            "sweep", "--machines", "corpus:ring:states=8,seed=1,jump_every=4",
            "--structures", "PST", "--seeds", "0", "--json",
        ])
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["machines"] == [
            "corpus:ring:jump_every=4,output_dc=0.1,outputs=3,seed=1,states=8"
        ]
