"""Unit tests for gate-level netlists and the logic simulator."""

from __future__ import annotations

import pytest

from repro.bist import BISTStructure, synthesize
from repro.circuit import LogicSimulator, Netlist, netlist_from_controller, netlist_from_cover
from repro.logic import Cover, Cube


def _cover(num_inputs, num_outputs, rows):
    cover = Cover(num_inputs, num_outputs)
    for inputs, outputs in rows:
        cover.add(Cube.from_strings(inputs, outputs))
    return cover


class TestNetlistConstruction:
    def test_duplicate_signal_rejected(self):
        net = Netlist("n")
        net.add_primary_input("a")
        with pytest.raises(ValueError):
            net.add_primary_input("a")

    def test_gate_arity_checks(self):
        net = Netlist("n")
        net.add_primary_input("a")
        with pytest.raises(ValueError):
            net.add_gate("bad", "NOT", ["a", "a"])
        with pytest.raises(ValueError):
            net.add_gate("bad", "AND", [])
        with pytest.raises(ValueError):
            net.add_gate("bad", "FROB", ["a"])

    def test_unknown_signal_reference(self):
        net = Netlist("n")
        net.add_primary_input("a")
        net.add_gate("z", "NOT", ["ghost"])
        with pytest.raises(ValueError):
            net.validate()

    def test_cycle_detection(self):
        net = Netlist("n")
        net.add_primary_input("a")
        net.add_gate("x", "AND", ["a", "y"])
        net.add_gate("y", "AND", ["a", "x"])
        with pytest.raises(ValueError):
            net.validate()

    def test_mark_output_unknown(self):
        net = Netlist("n")
        with pytest.raises(ValueError):
            net.mark_output("nope")

    def test_gate_count_excludes_pseudo_inputs(self):
        net = Netlist("n")
        net.add_primary_input("a")
        net.add_flip_flop("s", "d")
        net.add_gate("d", "NOT", ["a"])
        assert net.gate_count() == 1
        assert net.state_signals == ["s"]


class TestNetlistFromCover:
    def test_and_or_planes(self):
        cover = _cover(2, 1, [("1-", "1"), ("01", "1")])
        net = netlist_from_cover(cover, ["a", "b"], ["z"])
        net.mark_output("z")
        net.validate()
        sim = LogicSimulator(net, word_width=1)
        for a in (0, 1):
            for b in (0, 1):
                values = sim.evaluate({"a": a, "b": b}, {})
                expected = cover.evaluate((a, b))[0]
                assert values["z"] == expected

    def test_empty_output_is_constant_zero(self):
        cover = _cover(2, 2, [("1-", "10")])
        net = netlist_from_cover(cover, ["a", "b"], ["y", "z"])
        sim = LogicSimulator(net, word_width=1)
        assert sim.evaluate({"a": 1, "b": 1}, {})["z"] == 0

    def test_constant_one_product(self):
        cover = _cover(2, 1, [("--", "1")])
        net = netlist_from_cover(cover, ["a", "b"], ["z"])
        sim = LogicSimulator(net, word_width=1)
        assert sim.evaluate({"a": 0, "b": 0}, {})["z"] == 1

    def test_name_mismatch_rejected(self):
        cover = _cover(2, 1, [("1-", "1")])
        with pytest.raises(ValueError):
            netlist_from_cover(cover, ["a"], ["z"])


class TestNetlistFromController:
    @pytest.mark.parametrize("structure", list(BISTStructure))
    def test_netlists_validate(self, small_controller, structure):
        controller = synthesize(small_controller, structure)
        net = netlist_from_controller(controller)
        net.validate()
        assert len(net.flip_flops) == controller.encoding.width
        assert len(net.primary_outputs) == small_controller.num_outputs

    def test_misr_structure_contains_xor_gates(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.PST)
        net = netlist_from_controller(controller)
        assert net.xor_gate_count() >= controller.encoding.width

    def test_dff_structure_has_no_xor_gates(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.DFF)
        net = netlist_from_controller(controller)
        assert net.xor_gate_count() == 0

    def test_reset_state_loaded(self, small_controller):
        controller = synthesize(small_controller, BISTStructure.DFF)
        net = netlist_from_controller(controller)
        reset_code = controller.encoding.code_of(small_controller.reset_state)
        sim = LogicSimulator(net, word_width=1)
        state = sim.reset_state()
        observed = "".join(str(state[s] & 1) for s in net.state_signals)
        assert observed == reset_code


class TestLogicSimulator:
    def test_word_parallel_evaluation(self):
        cover = _cover(2, 1, [("11", "1")])
        net = netlist_from_cover(cover, ["a", "b"], ["z"])
        sim = LogicSimulator(net, word_width=4)
        # lanes: a = 0011, b = 0101 -> z = a & b = 0001
        values = sim.evaluate({"a": 0b0011, "b": 0b0101}, {})
        assert values["z"] == 0b0001

    def test_not_gate_masked(self):
        net = Netlist("n")
        net.add_primary_input("a")
        net.add_gate("z", "NOT", ["a"])
        sim = LogicSimulator(net, word_width=4)
        assert sim.evaluate({"a": 0b0101}, {})["z"] == 0b1010

    def test_step_advances_state(self):
        net = Netlist("toggler")
        net.add_flip_flop("s", "d")
        net.add_gate("d", "NOT", ["s"])
        net.mark_output("s")
        sim = LogicSimulator(net, word_width=1)
        state = sim.reset_state()
        _, state = sim.step({}, state)
        assert state["s"] == 1
        _, state = sim.step({}, state)
        assert state["s"] == 0

    def test_run_traces_observed_signals(self):
        net = Netlist("toggler")
        net.add_flip_flop("s", "d")
        net.add_gate("d", "NOT", ["s"])
        net.mark_output("s")
        sim = LogicSimulator(net, word_width=1)
        trace = sim.run([{}, {}, {}])
        assert [t["s"] for t in trace] == [1, 0, 1]

    def test_invalid_word_width(self):
        net = Netlist("n")
        net.add_primary_input("a")
        with pytest.raises(ValueError):
            LogicSimulator(net, word_width=0)
