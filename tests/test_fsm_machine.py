"""Unit tests for the symbolic FSM model."""

from __future__ import annotations

import pytest

from repro.fsm import FSM, FSMError, Transition
from repro.fsm.machine import (
    _complement_cubes,
    _cubes_cover_everything,
    cube_matches,
    cube_minterm_count,
    cubes_intersect,
    expand_cube,
)


class TestCubeHelpers:
    def test_cube_matches_exact(self):
        assert cube_matches("101", "101")
        assert not cube_matches("101", "100")

    def test_cube_matches_with_dashes(self):
        assert cube_matches("1-0", "110")
        assert cube_matches("1-0", "100")
        assert not cube_matches("1-0", "101")

    def test_cube_matches_width_mismatch(self):
        with pytest.raises(FSMError):
            cube_matches("1-", "101")

    def test_cubes_intersect(self):
        assert cubes_intersect("1-0", "-10")
        assert not cubes_intersect("1-0", "0--")
        assert cubes_intersect("---", "010")

    def test_expand_cube_counts(self):
        assert sorted(expand_cube("1-")) == ["10", "11"]
        assert list(expand_cube("01")) == ["01"]
        assert len(list(expand_cube("---"))) == 8

    def test_cube_minterm_count(self):
        assert cube_minterm_count("0-1-") == 4
        assert cube_minterm_count("01") == 1

    def test_cover_everything_full_dash(self):
        assert _cubes_cover_everything(["--"], 2)

    def test_cover_everything_split(self):
        assert _cubes_cover_everything(["0-", "1-"], 2)
        assert not _cubes_cover_everything(["0-", "10"], 2)

    def test_complement_of_empty_is_universe(self):
        assert _complement_cubes([], 2) == ["--"]

    def test_complement_of_universe_is_empty(self):
        assert _complement_cubes(["--"], 2) == []

    def test_complement_partitions_space(self):
        cubes = ["00", "1-"]
        complement = _complement_cubes(cubes, 2)
        covered = set()
        for c in cubes + complement:
            covered.update(expand_cube(c))
        assert covered == {"00", "01", "10", "11"}
        # No overlap between original and complement.
        original = {m for c in cubes for m in expand_cube(c)}
        comp = {m for c in complement for m in expand_cube(c)}
        assert not original & comp


class TestTransition:
    def test_matches(self):
        t = Transition("1-", "a", "b", "0")
        assert t.matches("10")
        assert not t.matches("01")


class TestFSMConstruction:
    def test_basic_properties(self, small_controller):
        assert small_controller.num_states == 8
        assert small_controller.min_code_bits == 3
        assert small_controller.reset_state in small_controller.states

    def test_states_collected_in_order(self):
        fsm = FSM(
            "m",
            1,
            1,
            [
                Transition("0", "x", "y", "1"),
                Transition("1", "x", "z", "0"),
                Transition("-", "y", "x", "0"),
                Transition("-", "z", "x", "1"),
            ],
        )
        assert fsm.states == ("x", "y", "z")

    def test_explicit_state_order(self):
        fsm = FSM(
            "m",
            1,
            1,
            [Transition("-", "a", "b", "1"), Transition("-", "b", "a", "0")],
            states=["b", "a"],
        )
        assert fsm.states == ("b", "a")

    def test_duplicate_state_list_rejected(self):
        with pytest.raises(FSMError):
            FSM("m", 1, 1, [Transition("-", "a", "a", "0")], states=["a", "a"])

    def test_bad_input_cube_rejected(self):
        with pytest.raises(FSMError):
            FSM("m", 2, 1, [Transition("0", "a", "a", "1")])

    def test_bad_output_cube_rejected(self):
        with pytest.raises(FSMError):
            FSM("m", 1, 2, [Transition("0", "a", "a", "2x")])

    def test_unknown_reset_state_rejected(self):
        with pytest.raises(FSMError):
            FSM("m", 1, 1, [Transition("0", "a", "a", "1")], reset_state="zzz")

    def test_default_reset_is_first_present_state(self):
        fsm = FSM("m", 1, 1, [Transition("-", "q1", "q2", "1"), Transition("-", "q2", "q1", "0")])
        assert fsm.reset_state == "q1"

    def test_min_code_bits_single_state(self):
        fsm = FSM("m", 1, 1, [Transition("-", "only", "only", "0")])
        assert fsm.min_code_bits == 1


class TestFSMBehaviour:
    def test_lookup_returns_matching_transition(self, paper_example_fsm):
        nxt, out = paper_example_fsm.lookup("A", "1")
        assert nxt == "B"
        assert out == "0"

    def test_lookup_requires_full_vector(self, paper_example_fsm):
        with pytest.raises(FSMError):
            paper_example_fsm.lookup("A", "-")

    def test_lookup_missing_returns_none(self, incomplete_fsm):
        nxt, out = incomplete_fsm.lookup("idle", "11")
        assert nxt is None
        assert out == "--"

    def test_simulate_trace(self, paper_example_fsm):
        trace = paper_example_fsm.simulate(["1", "0", "0"])
        assert [s for s, _ in trace] == ["B", "C", "A"]
        assert [o for _, o in trace] == ["0", "1", "1"]

    def test_simulate_stops_on_unspecified(self, incomplete_fsm):
        trace = incomplete_fsm.simulate(["11", "00"])
        assert len(trace) == 1

    def test_transitions_from_unknown_state(self, paper_example_fsm):
        with pytest.raises(FSMError):
            paper_example_fsm.transitions_from("nope")


class TestFSMAnalysis:
    def test_deterministic(self, paper_example_fsm, small_controller):
        assert paper_example_fsm.is_deterministic()
        assert small_controller.is_deterministic()

    def test_non_deterministic_detected(self):
        fsm = FSM(
            "nd",
            1,
            1,
            [Transition("-", "a", "b", "0"), Transition("1", "a", "a", "1"), Transition("-", "b", "a", "0")],
        )
        assert not fsm.is_deterministic()

    def test_completely_specified(self, paper_example_fsm, incomplete_fsm):
        assert paper_example_fsm.is_completely_specified()
        assert not incomplete_fsm.is_completely_specified()

    def test_reachable_states(self, paper_example_fsm):
        assert paper_example_fsm.reachable_states() == frozenset({"A", "B", "C"})

    def test_unreachable_state(self):
        fsm = FSM(
            "u",
            1,
            1,
            [
                Transition("-", "a", "a", "0"),
                Transition("-", "island", "a", "1"),
            ],
            reset_state="a",
        )
        assert "island" not in fsm.reachable_states()
        assert not fsm.is_strongly_connected()

    def test_strongly_connected(self, paper_example_fsm):
        assert paper_example_fsm.is_strongly_connected()

    def test_used_input_columns(self, incomplete_fsm):
        assert incomplete_fsm.used_input_columns() == [0, 1]

    def test_transition_count_matrix(self, paper_example_fsm):
        counts = paper_example_fsm.transition_count_matrix()
        assert counts[("A", "B")] == 1
        assert counts[("A", "A")] == 1


class TestFSMTransforms:
    def test_renamed(self, paper_example_fsm):
        renamed = paper_example_fsm.renamed({"A": "S0", "B": "S1", "C": "S2"})
        assert renamed.states == ("S0", "S1", "S2")
        assert renamed.reset_state == "S0"
        assert renamed.lookup("S0", "1")[0] == "S1"

    def test_renamed_merge_rejected(self, paper_example_fsm):
        with pytest.raises(FSMError):
            paper_example_fsm.renamed({"A": "X", "B": "X"})

    def test_completed_is_identity_when_complete(self, paper_example_fsm):
        assert paper_example_fsm.completed() is paper_example_fsm

    def test_completed_adds_dont_care_rows(self, incomplete_fsm):
        completed = incomplete_fsm.completed()
        assert completed.is_completely_specified()
        extra = [t for t in completed.transitions if t.next == "*"]
        assert extra, "completion should add unspecified-next transitions"
        for t in extra:
            assert t.outputs == "--"

    def test_completed_with_default_next(self, incomplete_fsm):
        completed = incomplete_fsm.completed(default_next="idle")
        assert completed.is_completely_specified()
        assert all(t.next != "*" for t in completed.transitions)
