"""Integration tests: synthesised circuits must behave like the source FSM.

This is the strongest correctness check of the whole flow: for every BIST
structure, the synthesised gate-level circuit is simulated cycle by cycle
against the symbolic machine.  The encoded state trajectory must track the
symbolic states exactly, and every *specified* output bit must match (output
don't cares are free).
"""

from __future__ import annotations

import random

import pytest

from repro.bist import BISTStructure, SynthesisOptions, synthesize
from repro.circuit import LogicSimulator, netlist_from_controller
from repro.fsm import FSM, generate_controller, load_benchmark


def _check_equivalence(fsm: FSM, structure: BISTStructure, cycles: int = 40, seed: int = 0) -> None:
    controller = synthesize(fsm, structure)
    netlist = netlist_from_controller(controller)
    netlist.validate()
    simulator = LogicSimulator(netlist, word_width=1)

    rng = random.Random(seed)
    encoding = controller.encoding
    state_signals = netlist.state_signals

    symbolic_state = fsm.reset_state
    circuit_state = simulator.reset_state()

    for cycle in range(cycles):
        vector = "".join(rng.choice("01") for _ in range(fsm.num_inputs))
        inputs = {f"in{i}": int(ch) for i, ch in enumerate(vector)}

        expected_next, expected_outputs = fsm.lookup(symbolic_state, vector)
        values, circuit_state = simulator.step(inputs, circuit_state)

        for o, expected in enumerate(expected_outputs):
            if expected == "-":
                continue
            observed = values[f"out{o}"] & 1
            assert observed == int(expected), (
                f"{fsm.name}/{structure}: output {o} mismatch in cycle {cycle} "
                f"(state {symbolic_state}, input {vector})"
            )

        if expected_next is None:
            break  # behaviour unspecified from here on
        observed_code = "".join(str(circuit_state[s] & 1) for s in state_signals)
        assert observed_code == encoding.code_of(expected_next), (
            f"{fsm.name}/{structure}: state mismatch in cycle {cycle} "
            f"(expected {expected_next})"
        )
        symbolic_state = expected_next


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("structure", list(BISTStructure))
    def test_small_controller_equivalent(self, small_controller, structure):
        _check_equivalence(small_controller, structure, cycles=50, seed=1)

    @pytest.mark.parametrize("structure", list(BISTStructure))
    def test_counter_equivalent(self, tiny_counter, structure):
        _check_equivalence(tiny_counter, structure, cycles=30, seed=2)

    @pytest.mark.parametrize("structure", list(BISTStructure))
    def test_paper_example_equivalent(self, paper_example_fsm, structure):
        _check_equivalence(paper_example_fsm, structure, cycles=30, seed=3)

    def test_benchmark_machine_equivalent_pst(self):
        fsm = load_benchmark("dk512")
        _check_equivalence(fsm, BISTStructure.PST, cycles=40, seed=4)

    def test_benchmark_machine_equivalent_dff(self):
        fsm = load_benchmark("modulo12")
        _check_equivalence(fsm, BISTStructure.DFF, cycles=40, seed=5)

    def test_larger_controller_equivalent(self):
        fsm = generate_controller("mid", num_states=17, num_inputs=4, num_outputs=5, num_transitions=60, seed=21)
        for structure in (BISTStructure.PST, BISTStructure.PAT):
            _check_equivalence(fsm, structure, cycles=60, seed=6)


class TestCrossStructureConsistency:
    def test_all_structures_realise_the_same_machine(self, small_controller):
        """The primary-output behaviour must agree across all four structures."""
        rng = random.Random(99)
        vectors = [
            "".join(rng.choice("01") for _ in range(small_controller.num_inputs))
            for _ in range(30)
        ]
        reference = small_controller.simulate(vectors)

        for structure in BISTStructure:
            controller = synthesize(small_controller, structure)
            netlist = netlist_from_controller(controller)
            simulator = LogicSimulator(netlist, word_width=1)
            state = simulator.reset_state()
            for (expected_state, expected_outputs), vector in zip(reference, vectors):
                inputs = {f"in{i}": int(ch) for i, ch in enumerate(vector)}
                values, state = simulator.step(inputs, state)
                for o, expected in enumerate(expected_outputs):
                    if expected != "-":
                        assert (values[f"out{o}"] & 1) == int(expected)

    def test_synthesis_options_do_not_change_behaviour(self, small_controller):
        options = SynthesisOptions(minimize_method="quick", seed=7)
        _controller = synthesize(small_controller, BISTStructure.PST, options=options)
        # Behavioural check with the quick minimiser (weaker optimisation,
        # same function).
        controller = synthesize(small_controller, BISTStructure.PST, options=options)
        netlist = netlist_from_controller(controller)
        simulator = LogicSimulator(netlist, word_width=1)
        rng = random.Random(5)
        symbolic_state = small_controller.reset_state
        state = simulator.reset_state()
        for _ in range(30):
            vector = "".join(rng.choice("01") for _ in range(small_controller.num_inputs))
            expected_next, expected_outputs = small_controller.lookup(symbolic_state, vector)
            values, state = simulator.step({f"in{i}": int(ch) for i, ch in enumerate(vector)}, state)
            for o, expected in enumerate(expected_outputs):
                if expected != "-":
                    assert (values[f"out{o}"] & 1) == int(expected)
            if expected_next is None:
                break
            symbolic_state = expected_next
