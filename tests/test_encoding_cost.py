"""Unit tests for the state-assignment cost model."""

from __future__ import annotations

import pytest

from repro.encoding import (
    StateEncoding,
    encoding_cost,
    face_contains_foreign_state,
    group_face,
    input_incompatibility,
    natural_encoding,
    output_incompatibility,
)
from repro.encoding.cost import estimate_product_terms, first_column_incompatibility
from repro.lfsr import LFSR
from repro.logic import symbolic_minimize


class TestGroupFace:
    def test_face_of_identical_prefixes(self):
        prefixes = {"a": "01", "b": "01", "c": "11"}
        assert group_face(["a", "b"], prefixes) == "01"

    def test_face_with_differing_column(self):
        prefixes = {"a": "00", "b": "01"}
        assert group_face(["a", "b"], prefixes) == "0-"

    def test_empty_group(self):
        assert group_face([], {"a": "0"}) == ""

    def test_foreign_state_detection(self):
        prefixes = {"a": "00", "b": "01", "c": "0"}
        face = group_face(["a", "b"], prefixes)
        # c has prefix "0" and matches the face "0-" in its assigned column.
        assert face_contains_foreign_state(face, ["a", "b"], {"a": "00", "b": "01", "c": "00"})

    def test_no_foreign_state(self):
        prefixes = {"a": "00", "b": "01", "c": "11"}
        face = group_face(["a", "b"], prefixes)
        assert not face_contains_foreign_state(face, ["a", "b"], prefixes)


class TestIncompatibilities:
    def test_input_incompatibility_counts_split_groups(self, small_controller):
        implicants = symbolic_minimize(small_controller)
        # With an empty partial assignment nothing can be split yet.
        empty = {s: "" for s in small_controller.states}
        assert input_incompatibility(implicants, empty) == 0

    def test_output_incompatibility_column_zero_is_free_for_misr(self, small_controller):
        implicants = symbolic_minimize(small_controller)
        enc = natural_encoding(small_controller)
        prefixes = {s: enc.code_of(s) for s in small_controller.states}
        assert output_incompatibility(implicants, prefixes, 0, register="misr") == 0

    def test_output_incompatibility_register_validation(self, small_controller):
        implicants = symbolic_minimize(small_controller)
        with pytest.raises(ValueError):
            output_incompatibility(implicants, {}, 1, register="jk")

    def test_encoding_cost_non_negative(self, small_controller):
        implicants = symbolic_minimize(small_controller)
        enc = natural_encoding(small_controller)
        assert encoding_cost(implicants, enc) >= 0

    def test_first_column_incompatibility(self, small_controller):
        implicants = symbolic_minimize(small_controller)
        enc = natural_encoding(small_controller)
        lfsr = LFSR.with_primitive_polynomial(enc.width)
        feedback = {s: lfsr.feedback(enc.code_of(s)) for s in enc.states()}
        cost = first_column_incompatibility(implicants, enc, feedback)
        assert cost >= 0


class TestEstimateProductTerms:
    def test_requires_register_for_pst(self, small_controller):
        enc = natural_encoding(small_controller)
        with pytest.raises(ValueError):
            estimate_product_terms(small_controller, enc, None, "pst")

    def test_estimate_positive_and_bounded(self, small_controller):
        enc = natural_encoding(small_controller)
        lfsr = LFSR.with_primitive_polynomial(enc.width)
        estimate = estimate_product_terms(small_controller, enc, lfsr, "pst")
        assert 0 < estimate <= len(small_controller.transitions)

    def test_dff_estimate_ignores_register(self, small_controller):
        enc = natural_encoding(small_controller)
        a = estimate_product_terms(small_controller, enc, None, "dff")
        b = estimate_product_terms(small_controller, enc, LFSR.with_primitive_polynomial(enc.width), "dff")
        assert a == b

    def test_estimate_depends_on_encoding(self, small_controller):
        lfsr = LFSR.with_primitive_polynomial(small_controller.min_code_bits)
        values = set()
        from repro.encoding import random_encoding

        for seed in range(6):
            enc = random_encoding(small_controller, seed=seed)
            values.add(estimate_product_terms(small_controller, enc, lfsr, "pst"))
        assert len(values) > 1, "different encodings should give different estimates"

    def test_estimate_correlates_with_synthesis(self, paper_example_fsm):
        # A perfect-alignment check on the tiny Fig. 3 machine: the estimate
        # never exceeds the number of specified transitions.
        enc = StateEncoding(2, {"A": "01", "B": "10", "C": "11"})
        lfsr = LFSR(2, 0b111)
        estimate = estimate_product_terms(paper_example_fsm, enc, lfsr, "pst")
        assert estimate <= len(paper_example_fsm.transitions)

    def test_unknown_structure_raises(self, small_controller):
        # Historically any unrecognised structure string silently fell back to
        # the "dff" rule; it is now a hard error.
        enc = natural_encoding(small_controller)
        lfsr = LFSR.with_primitive_polynomial(enc.width)
        with pytest.raises(ValueError, match="unknown structure"):
            estimate_product_terms(small_controller, enc, lfsr, "pat")
        with pytest.raises(ValueError, match="unknown structure"):
            estimate_product_terms(small_controller, enc, lfsr, "")
        # Case is normalised, not rejected.
        assert estimate_product_terms(small_controller, enc, lfsr, "PST") == \
            estimate_product_terms(small_controller, enc, lfsr, "pst")
