"""Tests of the corpus subsystem and the differential fuzz harness.

Covers the ``corpus:`` spec grammar, seed-stability of the generators (the
digest of a generated machine is a pure function of ``(generator, params,
seed)`` — including across interpreter hash randomisation), the digest's
role in the artifact-cache key path, KISS2 directory ingest, and the fuzz
harness's ability to catch a deliberately broken engine and emit a
minimized, replayable repro case.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import (
    GENERATORS,
    CorpusEntry,
    FuzzCase,
    FuzzReport,
    MUTATIONS,
    canonical_spec,
    corpus_entry,
    corpus_fsm,
    generate_corpus_fsm,
    ingest_kiss_dir,
    is_corpus_spec,
    parse_corpus_spec,
    replay_case,
    resolve_parameters,
    run_fuzz,
)
from repro.flow import ArtifactCache, FlowConfig, run_flow
from repro.flow.pipeline import fsm_digest, resolve_fsm
from repro.fsm.kiss import write_kiss
from repro.fsm.machine import FSMError

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------- spec grammar


class TestCorpusSpecs:
    def test_canonical_spec_fills_defaults_and_sorts_keys(self) -> None:
        entry = corpus_entry("corpus:ring:states=24,seed=7")
        assert entry.spec == (
            "corpus:ring:jump_every=32,output_dc=0.1,outputs=3,seed=7,states=24"
        )
        assert entry.name == entry.spec

    def test_parameter_spelling_and_order_do_not_change_digest(self) -> None:
        terse = corpus_entry("corpus:ring:seed=7,states=24")
        canonical = corpus_entry(terse.spec)
        assert terse.digest == canonical.digest
        assert terse.spec == canonical.spec

    def test_parse_corpus_spec_splits_generator_and_params(self) -> None:
        generator, raw = parse_corpus_spec("corpus:chain:states=40,seed=3")
        assert generator == "chain"
        assert raw == {"states": "40", "seed": "3"}

    def test_file_spec_keeps_path_verbatim(self) -> None:
        generator, raw = parse_corpus_spec("corpus:file:some/dir:odd/name.kiss2")
        assert generator == "file"
        assert raw == {"path": "some/dir:odd/name.kiss2"}

    def test_is_corpus_spec(self) -> None:
        assert is_corpus_spec("corpus:ring")
        assert not is_corpus_spec("dk16")
        assert not is_corpus_spec("machines/dk16.kiss2")

    @pytest.mark.parametrize(
        "spec",
        [
            "corpus:",
            "corpus:nosuchgenerator:states=4",
            "corpus:ring:states",
            "corpus:ring:states=4,states=8",
            "corpus:ring:bogus=1",
            "corpus:file:",
        ],
    )
    def test_bad_specs_raise_fsm_error(self, spec: str) -> None:
        with pytest.raises(FSMError):
            corpus_fsm(spec)

    def test_unknown_generator_error_lists_known_names(self) -> None:
        with pytest.raises(FSMError, match="ring"):
            resolve_parameters("nosuch", {})

    def test_string_parameters_are_coerced_by_default_type(self) -> None:
        _, params = resolve_parameters(
            "controller", {"states": "16", "density": "2.5"}
        )
        assert params["states"] == 16 and isinstance(params["states"], int)
        assert params["density"] == 2.5 and isinstance(params["density"], float)

    def test_tree_branch_must_be_power_of_two(self) -> None:
        with pytest.raises(FSMError):
            corpus_fsm("corpus:tree:states=15,branch=3")


# ------------------------------------------------- seed-stability regression

#: Pinned digests: a pure function of (generator, params, seed).  A diff
#: here means generated machines changed, which silently invalidates every
#: cached artifact and every published experiment built on the corpus.
PINNED_DIGESTS = {
    "corpus:controller:states=16,seed=0":
        "7d9aced1670db6d5d2f2c9722e6c249d308389618e6a2e4ceb81b58010452731",
    "corpus:chain:states=40,seed=3":
        "8754122baa409b9e8bcc76b8f8dc44136c9bebef3cbb615aa07a8faf7b0fede2",
    "corpus:ring:states=24,seed=7":
        "8bc36efebf9ffb7fe53856108389e477263ce0bfb4bbea80502394116a0eb60d",
    "corpus:tree:states=15,seed=2":
        "de1b02b0375c41e88c19489da4df12dad47857c9b3ba0c9c79fc0eaed617743a",
}


class TestSeedStability:
    @pytest.mark.parametrize("spec,expected", sorted(PINNED_DIGESTS.items()))
    def test_pinned_digest(self, spec: str, expected: str) -> None:
        assert corpus_entry(spec).digest == expected

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    def test_same_spec_resolves_to_identical_digest(self, family: str) -> None:
        spec = f"corpus:{family}:states=15,seed=11"
        first, second = corpus_entry(spec), corpus_entry(spec)
        assert first.digest == second.digest
        assert first == second

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    def test_seed_changes_digest(self, family: str) -> None:
        a = corpus_entry(f"corpus:{family}:states=15,seed=1")
        b = corpus_entry(f"corpus:{family}:states=15,seed=2")
        assert a.digest != b.digest

    def test_digest_stable_across_hash_randomisation(self) -> None:
        """The digest must not depend on the interpreter's hash seed."""
        spec = "corpus:controller:states=12,seed=5"
        script = (
            "from repro.corpus import corpus_entry; "
            f"print(corpus_entry({spec!r}).digest)"
        )
        digests = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = str(SRC_DIR)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1] == corpus_entry(spec).digest


class TestDigestInCacheKeyPath:
    def test_corpus_digest_keys_the_artifact_cache(self, tmp_path: Path) -> None:
        spec = "corpus:ring:states=12,seed=0,jump_every=4"
        cfg = FlowConfig(structure="PST", fault_patterns=16)
        cache = ArtifactCache(tmp_path)

        cold = run_flow(spec, cfg, cache=cache)
        assert cold.to_dict()["fsm_digest"] == corpus_entry(spec).digest

        warm = run_flow(spec, cfg, cache=cache)
        work = ("assign", "excite", "minimize", "faultsim")
        assert all(s.cached for s in warm.stages if s.name in work)
        assert warm.metrics == cold.metrics

        # A different generator seed is a different digest: nothing aliases.
        other = run_flow("corpus:ring:states=12,seed=1,jump_every=4", cfg, cache=cache)
        assert not any(s.cached for s in other.stages)
        assert other.to_dict()["fsm_digest"] != cold.to_dict()["fsm_digest"]


# ------------------------------------------------------------------- ingest


class TestIngest:
    def _write_corpus(self, directory: Path) -> None:
        for spec in ("corpus:ring:states=6,seed=1", "corpus:tree:states=7,seed=2"):
            fsm = corpus_fsm(spec)
            stem = spec.split(":")[1] + "_m"
            (directory / f"{stem}.kiss2").write_text(write_kiss(fsm))

    def test_ingest_yields_digest_addressed_entries(self, tmp_path: Path) -> None:
        self._write_corpus(tmp_path)
        entries = ingest_kiss_dir(tmp_path)
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        assert len(entries) == 2
        for entry in entries:
            assert isinstance(entry, CorpusEntry)
            assert entry.spec.startswith("corpus:file:")
            resolved = resolve_fsm(entry.spec)
            assert fsm_digest(resolved) == entry.digest

    def test_ingested_spec_runs_through_the_flow(self, tmp_path: Path) -> None:
        self._write_corpus(tmp_path)
        entry = ingest_kiss_dir(tmp_path)[0]
        result = run_flow(entry.spec, FlowConfig(structure="PST"))
        assert result.to_dict()["fsm_digest"] == entry.digest

    def test_missing_and_empty_directories_raise(self, tmp_path: Path) -> None:
        with pytest.raises(FSMError):
            ingest_kiss_dir(tmp_path / "nope")
        with pytest.raises(FSMError):
            ingest_kiss_dir(tmp_path)


# ------------------------------------------------------------- fuzz harness


class TestFuzzHarness:
    def test_clean_run_passes_and_serializes(self) -> None:
        report = run_fuzz(cases=2, seed=0, minimize=False)
        assert report.ok
        assert report.passed == 2 and report.failed == 0
        data = report.to_dict()
        assert data["schema"] == "repro.fuzz/1"
        assert FuzzReport.from_dict(json.loads(json.dumps(data))).to_dict() == data

    def test_case_derivation_is_deterministic(self) -> None:
        from repro.corpus import make_cases

        assert make_cases(8, seed=3) == make_cases(8, seed=3)
        assert make_cases(8, seed=3) != make_cases(8, seed=4)

    @pytest.mark.parametrize("mutation", ["kiss-swap-lines", "seed-drift"])
    def test_mutation_is_caught_minimized_and_replayable(self, mutation: str) -> None:
        assert mutation in MUTATIONS
        report = run_fuzz(cases=1, seed=0, mutate=mutation)
        assert not report.ok
        assert report.failures, "a mutated engine must produce failure entries"

        entry = report.failures[0]
        minimized = entry["minimized"]
        assert minimized["schema"] == "repro.fuzz/1"
        assert minimized["mutation"] == mutation
        original_states = int(
            dict(
                kv.split("=") for kv in entry["case"]["spec"].split(":", 2)[2].split(",")
            )["states"]
        )
        minimized_states = int(
            dict(
                kv.split("=") for kv in minimized["spec"].split(":", 2)[2].split(",")
            )["states"]
        )
        assert minimized_states <= original_states

        # Replaying the failure entry re-applies the stored mutation and fails…
        replayed = replay_case(entry)
        assert replayed["status"] == "fail"
        # …while the same minimized case without the mutation passes.
        clean = replay_case({**minimized, "mutation": None})
        assert clean["status"] == "pass"

    def test_unknown_mutation_rejected(self) -> None:
        with pytest.raises(ValueError):
            run_fuzz(cases=1, seed=0, mutate="not-a-mutation")

    def test_case_schema_round_trip_and_validation(self) -> None:
        from repro.corpus import make_cases

        case = make_cases(1, seed=0)[0]
        assert FuzzCase.from_dict(case.to_dict()) == case
        bad = dict(case.to_dict(), schema="repro.fuzz/999")
        with pytest.raises(ValueError):
            FuzzCase.from_dict(bad)
        bad_inv = dict(case.to_dict(), invariants=["no-such-invariant"])
        with pytest.raises(ValueError):
            FuzzCase.from_dict(bad_inv)
